package cacqr

import (
	"fmt"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/plan"
	"cacqr/internal/serve"
)

// Server is the long-lived factorization/least-squares service the
// ROADMAP's north star names: it accepts requests of arbitrary shapes,
// plans each with the condition-aware planner, caches the decisions in
// a bounded LRU keyed by (m, n, procs, machine, memory budget, κ-bucket)
// — see plan.KappaBucket for the bucketing — batches concurrent
// same-key requests through one plan lookup, and executes them
// concurrently under a global simulated-rank budget. The planning cost
// is paid once per workload shape and amortized across traffic; the
// numerical routing (κ ≳ 10⁷ off the plain CholeskyQR2 family) is
// preserved because the κ-bucket is part of the cache key and cached
// plans are produced at the bucket's conservative edge.
//
// Create with NewServer, submit with Submit (safe for arbitrary
// concurrent use), observe with Stats, retire with Close. cmd/cacqrd
// wraps a Server in a JSON-over-HTTP daemon.
type Server struct {
	opts  ServerOptions
	inner *serve.Server
}

// ServerOptions configure a Server. The zero value is usable: 16-rank
// planning budget per request, a 128-entry plan cache, a 2ms batch
// window, and a 256-rank global execution budget.
type ServerOptions struct {
	// Procs is the default per-request planning budget (maximum
	// simulated ranks a plan may use) when SubmitRequest.Procs is 0.
	// Defaults to 16.
	Procs int
	// CacheEntries bounds the plan LRU (0 = 128).
	CacheEntries int
	// BatchWindow is how long the first request for an uncached plan key
	// waits for same-key followers before planning — the burst-batching
	// knob (0 = 2ms, negative = plan immediately).
	BatchWindow time.Duration
	// RankBudget bounds the total simulated ranks executing at once
	// across all in-flight requests (0 = 256). A single plan needing
	// more than the whole budget runs alone.
	RankBudget int
	// Options carry the planning and execution knobs shared by every
	// request: MemBudget, PlanMachine, InverseDepth, BaseSize, Workers,
	// Timeout. Options.CondEst must stay unset — conditioning is
	// per-request (SubmitRequest.CondEst).
	Options Options
}

// SubmitRequest is one unit of work for Server.Submit.
type SubmitRequest struct {
	// A is the matrix to factor (required, m ≥ n).
	A *Dense
	// B, when non-nil, turns the request into a least-squares solve
	// min ‖A·x − b‖₂ (length must equal A.Rows); nil requests the
	// factorization only.
	B []float64
	// Procs overrides the server's default planning budget (0 = default).
	Procs int
	// CondEst is the caller's κ₂(A) hint. 0 = measure the same cheap
	// power-iteration estimate AutoFactorize uses. The estimate is
	// bucketed per decade for the plan-cache key, so nearby values share
	// cached plans.
	CondEst float64
}

// SubmitResult is the outcome of one request.
type SubmitResult struct {
	// Q, R are the factors of A.
	Q, R *Dense
	// X is the least-squares solution (solve requests only).
	X []float64
	// Plan is the executed plan — cached or freshly produced.
	Plan *Plan
	// CondEst is the condition estimate the routing used (the caller's
	// hint, or the measured value).
	CondEst float64
	// PlanCacheHit reports whether the plan came from the cache or an
	// in-flight same-key lookup instead of a fresh planner run.
	PlanCacheHit bool
	// Stats is the simulated run's measured per-processor cost.
	Stats CostStats
}

// ServerStats snapshots a Server's counters: requests admitted, plan
// cache hits/misses/evictions and population, planner invocations vs
// batch joins, and the execution gate's in-flight rank tokens. The
// cache-amortization rate is Stats().HitRate().
type ServerStats = serve.Stats

// NewServer builds a Server. Malformed shared Options (negative Workers,
// a set CondEst, a negative Procs) are rejected up front so every later
// Submit fails only for per-request reasons.
func NewServer(o ServerOptions) (*Server, error) {
	if err := checkOptions(o.Options); err != nil {
		return nil, err
	}
	if o.Options.CondEst != 0 {
		return nil, fmt.Errorf("cacqr: ServerOptions.Options.CondEst must be unset (conditioning is per-request)")
	}
	if o.Procs < 0 {
		return nil, fmt.Errorf("cacqr: invalid default processor budget %d", o.Procs)
	}
	if o.Procs == 0 {
		o.Procs = 16
	}
	return &Server{
		opts: o,
		inner: serve.New(serve.Config{
			CacheEntries: o.CacheEntries,
			BatchWindow:  o.BatchWindow,
			RankBudget:   o.RankBudget,
		}),
	}, nil
}

// Submit plans, factors, and (for solve requests) back-substitutes one
// request. Same-shaped, same-κ-bucket requests share one cached plan;
// execution is admitted under the server's global rank budget. Safe for
// arbitrary concurrent use; blocks until the request completes.
func (s *Server) Submit(req SubmitRequest) (*SubmitResult, error) {
	if req.A == nil {
		return nil, fmt.Errorf("cacqr: Submit needs a matrix")
	}
	if req.B != nil && len(req.B) != req.A.Rows {
		return nil, fmt.Errorf("cacqr: rhs length %d for %d rows", len(req.B), req.A.Rows)
	}
	if req.CondEst != 0 {
		if err := checkOptions(Options{CondEst: req.CondEst}); err != nil {
			return nil, err
		}
	}
	procs := req.Procs
	if procs == 0 {
		procs = s.opts.Procs
	}
	if procs < 1 {
		return nil, fmt.Errorf("cacqr: invalid processor budget %d", procs)
	}
	cond := req.CondEst
	if cond == 0 {
		cond = lin.EstimateCond(req.A.toLin(), condEstIters)
	}
	opts := s.opts.Options
	opts.CondEst = cond

	out := &SubmitResult{CondEst: cond}
	pl, hit, err := s.inner.Do(planRequest(req.A.Rows, req.A.Cols, procs, opts), func(p plan.Plan) error {
		res, err := FactorizePlan(req.A, p, s.opts.Options)
		if err != nil {
			return err
		}
		out.Q, out.R, out.Plan, out.Stats = res.Q, res.R, res.Plan, res.Stats
		if req.B != nil {
			out.X, err = solveWithQR(res.Q, res.R, req.B)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	out.PlanCacheHit = hit
	if out.Plan == nil { // defensive: the executor always sets it
		out.Plan = &pl
	}
	return out, nil
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats { return s.inner.Stats() }

// Close refuses new requests and waits for in-flight ones to drain.
// Idempotent.
func (s *Server) Close() { s.inner.Close() }
