package cacqr

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/lin"
	"cacqr/internal/obs"
	"cacqr/internal/plan"
	"cacqr/internal/serve"
	"cacqr/internal/stream"
)

// ErrOverloaded is returned by Submit/SubmitBatch when the server's
// pending-request bound (ServerOptions.MaxPending) is reached: the
// request was refused at admission — nothing was queued and nothing
// in flight was dropped — so the caller can shed load or retry with
// backoff.
var ErrOverloaded = serve.ErrOverloaded

// Server is the long-lived factorization/least-squares service the
// ROADMAP's north star names: it accepts requests of arbitrary shapes,
// plans each with the condition-aware planner, caches the decisions in
// a bounded LRU keyed by (m, n, procs, machine, memory budget, κ-bucket)
// — see plan.KappaBucket for the bucketing — batches concurrent
// same-key requests through one plan lookup, and executes them
// concurrently under a global simulated-rank budget. The planning cost
// is paid once per workload shape and amortized across traffic; the
// numerical routing (κ ≳ 10⁷ off the plain CholeskyQR2 family) is
// preserved because the κ-bucket is part of the cache key and cached
// plans are produced at the bucket's conservative edge.
//
// Create with NewServer, submit with Submit (safe for arbitrary
// concurrent use), observe with Stats, retire with Close. cmd/cacqrd
// wraps a Server in a JSON-over-HTTP daemon.
type Server struct {
	opts  ServerOptions
	inner *serve.Server
}

// ServerOptions configure a Server. The zero value is usable: 16-rank
// planning budget per request, a 128-entry plan cache, a 2ms batch
// window, and a 256-rank global execution budget.
type ServerOptions struct {
	// Procs is the default per-request planning budget (maximum
	// simulated ranks a plan may use) when SubmitRequest.Procs is 0.
	// Defaults to 16.
	Procs int
	// CacheEntries bounds the plan LRU (0 = 128).
	CacheEntries int
	// BatchWindow is how long the first request for an uncached plan key
	// waits for same-key followers before planning — the burst-batching
	// knob (0 = 2ms, negative = plan immediately).
	BatchWindow time.Duration
	// RankBudget bounds the total simulated ranks executing at once
	// across all in-flight requests (0 = 256). A single plan needing
	// more than the whole budget runs alone.
	RankBudget int
	// MaxPending bounds admitted-but-unfinished requests (a SubmitBatch
	// of n counts n). Past the bound, submissions fail fast with
	// ErrOverloaded instead of queueing without bound (0 = 1024).
	MaxPending int
	// FuseWindow, when positive, turns Submit into a streaming batcher:
	// the first request for a plan key holds a window of this length
	// open and concurrent same-key requests join it, the whole group
	// then executing as ONE fused batched run (SubmitBatch semantics
	// without the caller having to assemble the batch). 0 disables
	// fusing for Submit; SubmitBatch always fuses.
	FuseWindow time.Duration
	// Options carry the planning and execution knobs shared by every
	// request: MemBudget, PlanMachine, InverseDepth, BaseSize, Workers,
	// Timeout. Options.CondEst must stay unset — conditioning is
	// per-request (SubmitRequest.CondEst).
	Options Options
}

// SubmitRequest is one unit of work for Server.Submit.
type SubmitRequest struct {
	// A is the matrix to factor (required, m ≥ n).
	A *Dense
	// B, when non-nil, turns the request into a least-squares solve
	// min ‖A·x − b‖₂ (length must equal A.Rows); nil requests the
	// factorization only.
	B []float64
	// Procs overrides the server's default planning budget (0 = default).
	Procs int
	// CondEst is the caller's κ₂(A) hint. 0 = measure the same cheap
	// power-iteration estimate AutoFactorize uses. The estimate is
	// bucketed per decade for the plan-cache key, so nearby values share
	// cached plans.
	CondEst float64
}

// SubmitResult is the outcome of one request.
type SubmitResult struct {
	// Q, R are the factors of A.
	Q, R *Dense
	// X is the least-squares solution (solve requests only).
	X []float64
	// Plan is the executed plan — cached or freshly produced.
	Plan *Plan
	// CondEst is the condition estimate the routing used (the caller's
	// hint, or the measured value).
	CondEst float64
	// PlanCacheHit reports whether the plan came from the cache or an
	// in-flight same-key lookup instead of a fresh planner run.
	PlanCacheHit bool
	// Fused reports that the request executed inside a fused batch (a
	// SubmitBatch group or a FuseWindow coalescence) through the strided
	// batch kernels rather than a per-request simulated run. Fused
	// results match per-request results to working accuracy; Stats then
	// carries the analytic critical-path flop count instead of a
	// simulated measurement.
	Fused bool
	// Stats is the run's per-processor cost: measured from the simulated
	// run for per-request execution, analytic for fused batches.
	Stats CostStats
	// TraceID identifies this request's span tree when the server's
	// Options.Tracer sampled it — retrievable via Tracer.Get (or
	// cacqrd's /v1/trace/{id}) while the trace stays in the retention
	// ring. Empty when tracing is off or the request was not sampled.
	TraceID string
	// Stream reports the panel schedule and resource accounting when the
	// request executed out-of-core (SubmitStream routed to a stream-tsqr
	// plan); nil for in-core executions.
	Stream *StreamInfo
}

// StreamRequest is one out-of-core unit of work for Server.SubmitStream:
// a matrix that arrives as a panel source instead of a resident Dense.
type StreamRequest struct {
	// Source feeds the matrix (required).
	Source *MatrixSource
	// Sink, when non-nil, receives the explicit Q panel by panel; nil
	// returns R only (single pass over the source).
	Sink *MatrixSink
	// CondEst is the caller's κ₂(A) hint (0 = assume well-conditioned —
	// the server cannot run the power-iteration estimator on a matrix it
	// never holds).
	CondEst float64
	// MemBudget caps the modeled resident footprint in bytes for this
	// request (0 = the server's shared Options.MemBudget). When the
	// effective budget rejects every in-core variant the planner routes
	// to the streaming TSQR; with no budget at all the source is simply
	// materialized and factored in core.
	MemBudget int64
}

// BatchItem is one request's outcome within SubmitBatch: exactly one of
// Result and Err is set.
type BatchItem struct {
	Result *SubmitResult
	Err    error
}

// ServerStats snapshots a Server's counters: requests admitted, plan
// cache hits/misses/evictions and population, planner invocations vs
// batch joins, and the execution gate's in-flight rank tokens. The
// cache-amortization rate is Stats().HitRate().
type ServerStats = serve.Stats

// NewServer builds a Server. Malformed shared Options (negative Workers,
// a set CondEst, a negative Procs) are rejected up front so every later
// Submit fails only for per-request reasons.
func NewServer(o ServerOptions) (*Server, error) {
	if err := checkOptions(o.Options); err != nil {
		return nil, err
	}
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if o.Options.CondEst != 0 {
		return nil, fmt.Errorf("cacqr: ServerOptions.Options.CondEst must be unset (conditioning is per-request)")
	}
	if o.Procs < 0 {
		return nil, fmt.Errorf("cacqr: invalid default processor budget %d", o.Procs)
	}
	if o.Procs == 0 {
		o.Procs = 16
	}
	return &Server{
		opts: o,
		inner: serve.New(serve.Config{
			CacheEntries: o.CacheEntries,
			BatchWindow:  o.BatchWindow,
			RankBudget:   o.RankBudget,
			MaxPending:   o.MaxPending,
			FuseWindow:   o.FuseWindow,
		}),
	}, nil
}

// Submit plans, factors, and (for solve requests) back-substitutes one
// request. Same-shaped, same-κ-bucket requests share one cached plan;
// execution is admitted under the server's global rank budget. Safe for
// arbitrary concurrent use; blocks until the request completes.
func (s *Server) Submit(req SubmitRequest) (*SubmitResult, error) {
	return s.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with request-scoped cancellation: a canceled ctx
// unblocks the serve layer's waits (batch windows, the rank gate) and
// aborts an in-flight distributed run — simulated ranks or TCP workers
// alike — returning the context's error. When the server's
// Options.Tracer samples the request, the whole path records a span
// tree (condest → plan → gate → execute → per-rank kernel stages and
// collectives) retrievable by the result's TraceID.
func (s *Server) SubmitCtx(ctx context.Context, req SubmitRequest) (*SubmitResult, error) {
	tr, ctx := s.opts.Options.Tracer.Start(ctx, "factorize")
	res, err := s.submit(ctx, req)
	if res != nil {
		res.TraceID = tr.ID()
		if res.Plan != nil {
			root := tr.Root()
			root.SetStr("variant", string(res.Plan.Variant))
			root.SetBool("cache_hit", res.PlanCacheHit)
		}
	}
	s.countRequest(req, res, err)
	tr.Finish()
	return res, err
}

// submit is the body of SubmitCtx, running under an already-started (or
// absent) trace carried on ctx.
func (s *Server) submit(ctx context.Context, req SubmitRequest) (*SubmitResult, error) {
	sp := obs.FromContext(ctx)
	cs := sp.Stage("condest")
	preq, cond, err := s.prepare(req)
	cs.SetFloat("kappa", cond)
	cs.End()
	if err != nil {
		return nil, err
	}
	root := obs.FromContext(ctx)
	root.SetInt("m", int64(req.A.Rows))
	root.SetInt("n", int64(req.A.Cols))
	root.SetInt("kappa_bucket", int64(plan.KappaBucket(cond)))
	if s.opts.FuseWindow > 0 {
		return s.submitFused(ctx, preq, req, cond)
	}
	out := &SubmitResult{CondEst: cond}
	pl, hit, err := s.inner.Do(ctx, preq, func(p plan.Plan) error {
		es := sp.Stage("execute")
		defer es.End()
		res, err := FactorizePlan(req.A, p, s.execOptions(obs.ContextWith(ctx, es)))
		if err != nil {
			return err
		}
		out.Q, out.R, out.Plan, out.Stats = res.Q, res.R, res.Plan, res.Stats
		if req.B != nil {
			out.X, err = solveWithQR(res.Q, res.R, req.B)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	out.PlanCacheHit = hit
	if out.Plan == nil { // defensive: the executor always sets it
		out.Plan = &pl
	}
	return out, nil
}

// SubmitStream plans and executes one out-of-core request: the planner
// sees the request's memory budget, and when that budget rejects every
// in-core variant it selects the streaming TSQR — which factors the
// source panel by panel without ever materializing it. The plan cache,
// batching window, rank gate, and tracing all apply exactly as for
// Submit (stream plans occupy one rank token). Blocks until complete;
// safe for arbitrary concurrent use.
func (s *Server) SubmitStream(req StreamRequest) (*SubmitResult, error) {
	return s.SubmitStreamCtx(context.Background(), req)
}

// SubmitStreamCtx is SubmitStream with request-scoped cancellation.
func (s *Server) SubmitStreamCtx(ctx context.Context, req StreamRequest) (*SubmitResult, error) {
	tr, ctx := s.opts.Options.Tracer.Start(ctx, "factorize-stream")
	res, err := s.submitStream(ctx, req)
	if res != nil {
		res.TraceID = tr.ID()
		if res.Plan != nil {
			root := tr.Root()
			root.SetStr("variant", string(res.Plan.Variant))
			root.SetBool("cache_hit", res.PlanCacheHit)
		}
	}
	s.countRequest(SubmitRequest{CondEst: req.CondEst}, res, err)
	tr.Finish()
	return res, err
}

// submitStream is the body of SubmitStreamCtx.
func (s *Server) submitStream(ctx context.Context, req StreamRequest) (*SubmitResult, error) {
	if req.Source == nil {
		return nil, fmt.Errorf("cacqr: SubmitStream needs a source")
	}
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if req.CondEst != 0 {
		if err := checkOptions(Options{CondEst: req.CondEst}); err != nil {
			return nil, err
		}
	}
	m, n := req.Source.Dims()
	budget := req.MemBudget
	if budget == 0 {
		budget = s.opts.Options.MemBudget
	}
	opts := s.opts.Options
	opts.CondEst = req.CondEst
	opts.MemBudget = budget
	// Streaming is single-rank; Procs = 1 keeps the plan cache key and
	// the rank-gate claim honest.
	preq := planRequest(m, n, 1, opts)
	root := obs.FromContext(ctx)
	root.SetInt("m", int64(m))
	root.SetInt("n", int64(n))
	root.SetInt("mem_budget", budget)
	sp := obs.FromContext(ctx)
	out := &SubmitResult{CondEst: req.CondEst}
	pl, hit, err := s.inner.Do(ctx, preq, func(p plan.Plan) error {
		es := sp.Stage("execute")
		defer es.End()
		eopts := s.execOptions(obs.ContextWith(ctx, es))
		eopts.CondEst = req.CondEst
		if p.Variant == plan.StreamTSQR {
			eopts.PanelRows = p.PanelWidth
			res, err := FactorizeStreaming(req.Source, req.Sink, eopts)
			if err != nil {
				return err
			}
			out.Q, out.R, out.Stats, out.Stream = res.Q, res.R, res.Stats, res.Stream
			return nil
		}
		// The budget admitted an in-core plan: materialize the source and
		// run it like any Submit.
		a, err := materializeSource(req.Source)
		if err != nil {
			return err
		}
		res, err := FactorizePlan(a, p, eopts)
		if err != nil {
			return err
		}
		out.Q, out.R, out.Stats = res.Q, res.R, res.Stats
		if req.Sink != nil && res.Q != nil {
			snk, err := req.Sink.open(a.Rows, a.Cols)
			if err != nil {
				return err
			}
			if err := stream.Drain(stream.NewDenseSource(res.Q.toLin()), snk, 0); err != nil {
				return err
			}
			return req.Sink.finish()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.PlanCacheHit = hit
	out.Plan = &pl
	return out, nil
}

// countRequest folds one finished request into the Tracer registry's
// cacqr_requests_total series — every request, sampled into a trace or
// not, so the counters stay exact however aggressive the sampling. A
// server without a tracer (or a tracer without metrics) pays a nil
// check.
func (s *Server) countRequest(req SubmitRequest, res *SubmitResult, err error) {
	m := s.opts.Options.Tracer.Metrics()
	if m == nil {
		return
	}
	variant, hit, bucket := "unknown", false, "unknown"
	if res != nil {
		if res.Plan != nil {
			variant = string(res.Plan.Variant)
		}
		hit = res.PlanCacheHit
		bucket = strconv.Itoa(plan.KappaBucket(res.CondEst))
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	} else if req.CondEst != 0 {
		bucket = strconv.Itoa(plan.KappaBucket(req.CondEst))
	}
	outcome := "ok"
	switch {
	case errors.Is(err, ErrOverloaded):
		outcome = "overloaded"
	case err != nil:
		outcome = "error"
	}
	m.Counter("cacqr_requests_total", "Requests by plan variant, κ-bucket, cache outcome, and result.",
		obs.L("variant", variant),
		obs.L("kappa_bucket", bucket),
		obs.L("cache_hit", strconv.FormatBool(hit)),
		obs.L("outcome", outcome)).Add(1)
}

// prepare validates one request and resolves its planner request: the
// effective processor budget and the condition estimate (the caller's
// hint, or the measured power-iteration value).
func (s *Server) prepare(req SubmitRequest) (plan.Request, float64, error) {
	if req.A == nil {
		return plan.Request{}, 0, fmt.Errorf("cacqr: Submit needs a matrix")
	}
	if req.B != nil && len(req.B) != req.A.Rows {
		return plan.Request{}, 0, fmt.Errorf("cacqr: rhs length %d for %d rows", len(req.B), req.A.Rows)
	}
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if req.CondEst != 0 {
		if err := checkOptions(Options{CondEst: req.CondEst}); err != nil {
			return plan.Request{}, 0, err
		}
	}
	procs := req.Procs
	if procs == 0 {
		procs = s.opts.Procs
	}
	if procs < 1 {
		return plan.Request{}, 0, fmt.Errorf("cacqr: invalid processor budget %d", procs)
	}
	cond := req.CondEst
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if cond == 0 {
		cond = lin.EstimateCond(req.A.toLin(), condEstIters)
	}
	opts := s.opts.Options
	opts.CondEst = cond
	return planRequest(req.A.Rows, req.A.Cols, procs, opts), cond, nil
}

// submitJob is one request riding a fused execution.
type submitJob struct {
	req SubmitRequest
	out *SubmitResult
	err error
}

// execOptions resolves the shared execution Options for one request,
// attaching its context so cancellation reaches the distributed run.
func (s *Server) execOptions(ctx context.Context) Options {
	opts := s.opts.Options
	opts.ctx = ctx
	return opts
}

// submitFused is Submit through the serve layer's fuse window:
// concurrent same-key submissions coalesce into one fused batched
// execution without the caller assembling a batch.
func (s *Server) submitFused(ctx context.Context, preq plan.Request, req SubmitRequest, cond float64) (*SubmitResult, error) {
	job := &submitJob{req: req, out: &SubmitResult{CondEst: cond}}
	pl, hit, err := s.inner.DoFused(ctx, preq, job, func(p plan.Plan, payloads []any) []error {
		es := obs.FromContext(ctx).Stage("execute")
		defer es.End()
		es.SetInt("fused_payloads", int64(len(payloads)))
		jobs := make([]*submitJob, len(payloads))
		for i, pay := range payloads {
			jobs[i] = pay.(*submitJob)
		}
		s.execGroup(obs.ContextWith(ctx, es), p, jobs)
		errs := make([]error, len(jobs))
		for i, j := range jobs {
			errs[i] = j.err
		}
		return errs
	})
	if err != nil {
		return nil, err
	}
	job.out.PlanCacheHit = hit
	if job.out.Plan == nil {
		job.out.Plan = &pl
	}
	return job.out, nil
}

// SubmitBatch submits many requests as one call, fusing same-plan-key
// groups into single batched executions through the strided batch
// kernels: per group, one plan resolution, one rank-gate admission, one
// BatchSYRK/BatchGEMM sweep per CholeskyQR pass — instead of one
// goroutine-pool spin-up per request. Outcomes are per item and
// index-aligned with reqs: a malformed or ill-conditioned member gets
// its own Err without failing its batch-mates, and a saturated server
// refuses whole groups with ErrOverloaded. Distinct-key groups execute
// concurrently. Safe for arbitrary concurrent use alongside Submit.
func (s *Server) SubmitBatch(reqs []SubmitRequest) []BatchItem {
	return s.SubmitBatchCtx(context.Background(), reqs)
}

// SubmitBatchCtx is SubmitBatch with request-scoped cancellation shared
// by every group in the batch.
func (s *Server) SubmitBatchCtx(ctx context.Context, reqs []SubmitRequest) []BatchItem {
	items := make([]BatchItem, len(reqs))
	type group struct {
		preq plan.Request
		jobs []*submitJob
		idxs []int
	}
	groups := make(map[plan.CacheKey]*group)
	var order []*group // deterministic dispatch order
	for i := range reqs {
		preq, cond, err := s.prepare(reqs[i])
		if err != nil {
			items[i].Err = err
			s.countRequest(reqs[i], nil, err)
			continue
		}
		key := plan.KeyFor(preq)
		g := groups[key]
		if g == nil {
			g = &group{preq: preq}
			groups[key] = g
			order = append(order, g)
		}
		g.jobs = append(g.jobs, &submitJob{req: reqs[i], out: &SubmitResult{CondEst: cond}})
		g.idxs = append(g.idxs, i)
	}
	var wg sync.WaitGroup
	for _, g := range order {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			pl, hit, err := s.inner.DoBatch(ctx, g.preq, len(g.jobs), func(p plan.Plan) error {
				s.execGroup(ctx, p, g.jobs)
				return nil
			})
			for j, job := range g.jobs {
				i := g.idxs[j]
				switch {
				case err != nil:
					items[i].Err = err
				case job.err != nil:
					items[i].Err = job.err
				default:
					job.out.PlanCacheHit = hit
					if job.out.Plan == nil {
						job.out.Plan = &pl
					}
					items[i].Result = job.out
				}
				s.countRequest(job.req, items[i].Result, items[i].Err)
			}
		}(g)
	}
	wg.Wait()
	return items
}

// denseView wraps a contiguous lin.Matrix in a Dense without copying;
// non-contiguous (strided-view) inputs fall back to a copy.
func denseView(m *lin.Matrix) *Dense {
	if m.Stride == m.Cols {
		return &Dense{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
	}
	return fromLin(m)
}

// execGroup runs one same-key group of jobs under an already-acquired
// rank-gate slot. The CholeskyQR2 family routes through the fused
// batched drivers (parallelism comes from the batch dimension, and the
// per-item kernel sequence is the sequential one, so results match
// per-request runs to working accuracy); TSQR and PGEQRF have no fused
// kernels and fall back to per-item simulated runs. Per-item failures
// land in job.err.
func (s *Server) execGroup(ctx context.Context, p plan.Plan, jobs []*submitJob) {
	switch p.Variant {
	case plan.Sequential, plan.OneD, plan.CACQR2, plan.PanelCACQR2, plan.ShiftedCQR3:
		shifted := p.Variant == plan.ShiftedCQR3
		as := make([]*lin.Matrix, len(jobs))
		for i, job := range jobs {
			// Read-only views, not toLin copies: the batched drivers never
			// mutate their inputs, and a 256-item batch window must not
			// pay a full extra pass over the data just to cross the
			// Dense/lin boundary.
			a := job.req.A
			as[i] = &lin.Matrix{Rows: a.Rows, Cols: a.Cols, Stride: a.Cols, Data: a.Data}
		}
		var qs, rs []*lin.Matrix
		var errs []error
		if shifted {
			qs, rs, errs = core.BatchedShiftedCQR3(as, s.opts.Options.Workers)
		} else {
			qs, rs, errs = core.BatchedCQR2(as, s.opts.Options.Workers)
		}
		m, n := jobs[0].req.A.Rows, jobs[0].req.A.Cols
		// Fused runs bypass the simulated runtime, so Stats carries the
		// §IV analytic critical-path flop count (plus the extra shifted
		// pass) instead of a measured cost.
		flops := lin.CQR2Flops(m, n)
		if shifted {
			flops += lin.SyrkFlops(m, n) + lin.CholFlops(n) + lin.TriInvFlops(n) + lin.GemmFlops(m, n, n)
		}
		for i, job := range jobs {
			if errs[i] != nil {
				job.err = errs[i]
				continue
			}
			job.out.Q, job.out.R = denseView(qs[i]), denseView(rs[i])
			job.out.Fused = true
			job.out.Stats = CostStats{Flops: flops}
			if job.req.B != nil {
				job.out.X, job.err = solveWithQR(job.out.Q, job.out.R, job.req.B)
			}
		}
	default:
		// No fused kernel for this variant: per-item distributed runs,
		// sequentially under the group's single gate admission.
		for _, job := range jobs {
			res, err := FactorizePlan(job.req.A, p, s.execOptions(ctx))
			if err != nil {
				job.err = err
				continue
			}
			job.out.Q, job.out.R, job.out.Plan, job.out.Stats = res.Q, res.R, res.Plan, res.Stats
			if job.req.B != nil {
				job.out.X, job.err = solveWithQR(res.Q, res.R, job.req.B)
			}
		}
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats { return s.inner.Stats() }

// Close refuses new requests and waits for in-flight ones to drain.
// Idempotent.
func (s *Server) Close() { s.inner.Close() }
