package cacqr

import (
	"errors"
	"fmt"
	"math"

	"cacqr/internal/core"
	"cacqr/internal/lin"
	"cacqr/internal/plan"
)

// AutoGrid is the GridSpec auto mode: it asks the planner to choose the
// algorithm variant and grid over up to procs simulated ranks.
// SolveLeastSquares dispatches through AutoFactorize when handed one.
func AutoGrid(procs int) GridSpec { return GridSpec{C: 0, D: procs} }

// SolveLeastSquares solves the overdetermined least-squares problem
// min ‖A·x − b‖₂ for an m×n matrix A (m ≥ n, full rank) by factoring A
// on the given simulated grid and back-substituting x = R⁻¹·Qᵀ·b. This
// is the workload the paper's introduction motivates: very
// overdetermined systems in many variables.
//
// A spec with C == 0 (see AutoGrid) selects the auto mode: the planner
// ranks every feasible variant and grid for up to spec.D ranks under
// Options.MemBudget / Options.PlanMachine and the winner is executed.
//
// Both modes are condition-aware. On a fixed grid, Options.CondEst — or,
// when unset, the same power-iteration estimate AutoFactorize makes —
// gates the CholeskyQR2 path: an input beyond its κ ≈ 10⁷ regime is
// rerouted to the shifted three-pass variant (or, past its regime too,
// to TSQR) on a 1D grid within the spec's rank budget, instead of
// silently returning a low-accuracy x. The estimate and the executed
// route are recorded in the underlying Result (surfaced by
// Server.Submit).
func SolveLeastSquares(a *Dense, b []float64, spec GridSpec, opts Options) ([]float64, error) {
	x, _, err := solveLeastSquares(a, b, spec, opts)
	return x, err
}

// solveLeastSquares is the shared body of SolveLeastSquares and the
// serving layer's solve path: it additionally returns the factorization
// Result so callers can see the plan, the measured costs, and the
// condition estimate the routing used.
func solveLeastSquares(a *Dense, b []float64, spec GridSpec, opts Options) ([]float64, *Result, error) {
	if len(b) != a.Rows {
		return nil, nil, fmt.Errorf("cacqr: rhs length %d for %d rows", len(b), a.Rows)
	}
	var res *Result
	var err error
	if spec.C == 0 {
		if spec.D < 1 {
			return nil, nil, fmt.Errorf("cacqr: auto grid needs a processor budget (use AutoGrid(procs))")
		}
		res, err = AutoFactorize(a, spec.D, opts)
	} else {
		res, err = factorizeFixedCondAware(a, spec, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	x, err := solveWithQR(res.Q, res.R, b)
	if err != nil {
		return nil, nil, err
	}
	return x, res, nil
}

// factorizeFixedCondAware is the fixed-grid factorization behind
// SolveLeastSquares: the caller chose the grid, but the CholeskyQR2
// family silently loses the solution's accuracy beyond κ ≈ 10⁷, so the
// solve path must not follow the spec blindly. It estimates κ₂(A) when
// Options.CondEst is unset and keeps the requested grid while the
// predicted orthogonality holds; otherwise the reroute is handed to the
// condition-aware planner (AutoFactorize) over the spec's rank budget,
// which picks the cheapest variant that survives at that κ —
// ShiftedCQR3 in its regime, TSQR beyond it. The estimate is recorded
// in Result.CondEst either way.
func factorizeFixedCondAware(a *Dense, spec GridSpec, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	// Validate the spec — shape divisibility included — before measuring
	// anything: whether an infeasible grid is rejected must not depend
	// on the matrix values steering the conditioning reroute.
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m, n := a.Rows, a.Cols
	if m%spec.D != 0 || n%spec.C != 0 {
		return nil, fmt.Errorf("cacqr: %dx%d matrix not divisible by the %dx%dx%d grid (need d | m, c | n)",
			m, n, spec.C, spec.D, spec.C)
	}
	cond := opts.CondEst
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if cond == 0 {
		cond = lin.EstimateCond(a.toLin(), condEstIters)
	}
	if plan.PredictOrthogonality(plan.CACQR2, m, n, 0, cond) <= plan.DefaultOrthTol {
		// Inside the CQR2 regime: the requested grid as before.
		res, err := FactorizeOnGrid(a, spec, opts)
		if err != nil {
			return nil, err
		}
		res.CondEst = cond
		return res, nil
	}
	opts.CondEst = cond
	return AutoFactorize(a, spec.Procs(), opts)
}

// ErrIllConditioned reports a CholeskyQR Gram/Cholesky breakdown:
// κ(A)² overflowed the precision, so the Gram matrix was not numerically
// positive definite. CholeskyQR2 returns it for κ ≳ 10⁷ inputs (route
// those to ShiftedCQR3 or FactorizeTSQR); SolveLeastSquaresSeq falls
// back to the shifted variant exactly when it sees this error.
var ErrIllConditioned = core.ErrIllConditioned

// SolveLeastSquaresSeq is the sequential counterpart using CholeskyQR2,
// falling back to the shifted three-pass variant when — and only when —
// CholeskyQR2 hit the ErrIllConditioned Gram breakdown. Any other
// failure (a shape error, say) propagates verbatim; retrying it through
// ShiftedCQR3 could only mask the original message.
func SolveLeastSquaresSeq(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("cacqr: rhs length %d for %d rows", len(b), a.Rows)
	}
	q, r, err := CholeskyQR2(a)
	if errors.Is(err, ErrIllConditioned) {
		q, r, err = ShiftedCQR3(a)
	}
	if err != nil {
		return nil, err
	}
	return solveWithQR(q, r, b)
}

// solveWithQR computes x = R⁻¹·Qᵀ·b by projection and back substitution.
// Pivots are checked against an ε-scaled tolerance relative to the
// largest diagonal magnitude, not exact zero: a denormal R_jj would pass
// a d == 0 test and flood x with Inf/NaN, when the honest answer is that
// the system is numerically rank-deficient.
func solveWithQR(q, r *Dense, b []float64) ([]float64, error) {
	n := r.Cols
	var maxDiag float64
	for j := 0; j < n; j++ {
		if d := math.Abs(r.At(j, j)); d > maxDiag {
			maxDiag = d
		}
	}
	tol := float64(n) * lin.Eps * maxDiag
	qtb := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < q.Rows; i++ {
			s += q.At(i, j) * b[i]
		}
		qtb[j] = s
	}
	x := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		s := qtb[j]
		for k := j + 1; k < n; k++ {
			s -= r.At(j, k) * x[k]
		}
		d := r.At(j, j)
		if math.Abs(d) <= tol {
			return nil, fmt.Errorf("cacqr: numerically rank-deficient system (pivot %g at %d, tolerance %g)", d, j, tol)
		}
		x[j] = s / d
	}
	return x, nil
}
