package cacqr

import (
	"fmt"
)

// AutoGrid is the GridSpec auto mode: it asks the planner to choose the
// algorithm variant and grid over up to procs simulated ranks.
// SolveLeastSquares dispatches through AutoFactorize when handed one.
func AutoGrid(procs int) GridSpec { return GridSpec{C: 0, D: procs} }

// SolveLeastSquares solves the overdetermined least-squares problem
// min ‖A·x − b‖₂ for an m×n matrix A (m ≥ n, full rank) by factoring A
// on the given simulated grid and back-substituting x = R⁻¹·Qᵀ·b. This
// is the workload the paper's introduction motivates: very
// overdetermined systems in many variables.
//
// A spec with C == 0 (see AutoGrid) selects the auto mode: the planner
// ranks every feasible variant and grid for up to spec.D ranks under
// Options.MemBudget / Options.PlanMachine and the winner is executed.
func SolveLeastSquares(a *Dense, b []float64, spec GridSpec, opts Options) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("cacqr: rhs length %d for %d rows", len(b), a.Rows)
	}
	var res *Result
	var err error
	if spec.C == 0 {
		if spec.D < 1 {
			return nil, fmt.Errorf("cacqr: auto grid needs a processor budget (use AutoGrid(procs))")
		}
		res, err = AutoFactorize(a, spec.D, opts)
	} else {
		res, err = FactorizeOnGrid(a, spec, opts)
	}
	if err != nil {
		return nil, err
	}
	return solveWithQR(res.Q, res.R, b)
}

// SolveLeastSquaresSeq is the sequential counterpart using CholeskyQR2
// (falling back to the shifted three-pass variant for ill-conditioned
// inputs).
func SolveLeastSquaresSeq(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("cacqr: rhs length %d for %d rows", len(b), a.Rows)
	}
	q, r, err := CholeskyQR2(a)
	if err != nil {
		q, r, err = ShiftedCQR3(a)
		if err != nil {
			return nil, err
		}
	}
	return solveWithQR(q, r, b)
}

// solveWithQR computes x = R⁻¹·Qᵀ·b by projection and back substitution.
func solveWithQR(q, r *Dense, b []float64) ([]float64, error) {
	n := r.Cols
	qtb := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < q.Rows; i++ {
			s += q.At(i, j) * b[i]
		}
		qtb[j] = s
	}
	x := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		s := qtb[j]
		for k := j + 1; k < n; k++ {
			s -= r.At(j, k) * x[k]
		}
		d := r.At(j, j)
		if d == 0 {
			return nil, fmt.Errorf("cacqr: rank-deficient system (zero pivot at %d)", j)
		}
		x[j] = s / d
	}
	return x, nil
}
