package cacqr

import (
	"fmt"

	"cacqr/internal/core"
	"cacqr/internal/costmodel"
	"cacqr/internal/obs"
	"cacqr/internal/stream"
)

// MatrixSource feeds a factorization row panels of an m×n matrix that
// need never be resident all at once — the input side of the
// out-of-core streaming TSQR. Build one with SourceFromDense,
// SourceFromFile, or SourceFromGenerator.
type MatrixSource struct {
	src    stream.Source
	closer func() error
}

// Dims returns the full matrix shape (m, n).
func (s *MatrixSource) Dims() (m, n int) { return s.src.Dims() }

// Close releases any underlying file. Safe on sources with nothing to
// release.
func (s *MatrixSource) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer()
}

// SourceFromDense streams an in-memory matrix (not copied) — mostly
// useful for testing the streaming path against in-core results.
func SourceFromDense(a *Dense) *MatrixSource {
	return &MatrixSource{src: stream.NewDenseSource(a.toLin())}
}

// SourceFromFile opens a matrix file written by SinkToFile (or
// WriteMatrixFile) as a panel source. The file's two streaming passes
// are sequential scans.
func SourceFromFile(path string) (*MatrixSource, error) {
	fs, err := stream.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &MatrixSource{src: fs, closer: fs.Close}, nil
}

// SourceFromGenerator streams the deterministic m×n test matrix that
// RandomMatrix(m, n, seed) would materialize — bitwise identical, but
// never resident: the source cacqrd uses to serve "gen" requests too
// big for its memory cap.
func SourceFromGenerator(m, n int, seed int64) (*MatrixSource, error) {
	gs, err := stream.NewGenSource(m, n, seed)
	if err != nil {
		return nil, err
	}
	return &MatrixSource{src: gs}, nil
}

// WriteMatrixFile spills a source to path in the streaming panel
// format, panelRows rows at a time (0 = a sensible default).
func WriteMatrixFile(path string, src *MatrixSource, panelRows int) error {
	if err := src.src.Reset(); err != nil {
		return err
	}
	return stream.WriteFile(path, src.src, panelRows)
}

// MatrixSink receives the explicit Q of a streaming factorization panel
// by panel. Build one with SinkToDense (assemble Q in memory) or
// SinkToFile (write Q to disk, never resident). A nil sink skips the Q
// pass entirely — the factorization then makes a single pass and
// returns only R.
type MatrixSink struct {
	path  string // file sink destination; "" = dense
	dense *stream.DenseSink
	file  *stream.FileSink
}

// SinkToDense assembles Q in memory; read it back with Dense after the
// factorization returns.
func SinkToDense() *MatrixSink { return &MatrixSink{} }

// SinkToFile streams Q to a matrix file at path, so even the output
// never needs m·n resident words. The file is finalized when the
// factorization returns.
func SinkToFile(path string) *MatrixSink { return &MatrixSink{path: path} }

// Dense returns the assembled Q of a SinkToDense after a successful
// factorization.
func (s *MatrixSink) Dense() (*Dense, error) {
	if s.dense == nil {
		return nil, fmt.Errorf("cacqr: sink holds no in-memory Q (use SinkToDense and run FactorizeStreaming first)")
	}
	return denseView(s.dense.Matrix()), nil
}

// open binds the sink to the run's shape and returns the internal sink.
func (s *MatrixSink) open(m, n int) (stream.Sink, error) {
	if s.path != "" {
		f, err := stream.CreateFile(s.path, m, n)
		if err != nil {
			return nil, err
		}
		s.file = f
		return f, nil
	}
	s.dense = stream.NewDenseSink(m, n)
	return s.dense, nil
}

// finish finalizes a file-backed sink (flush + row-count check).
func (s *MatrixSink) finish() error {
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// StreamInfo reports a streaming run's shape and resource accounting.
type StreamInfo struct {
	// Panels is how many row panels the source yielded; PanelRows is the
	// panel height used.
	Panels, PanelRows int
	// ShiftedPanels counts panels that escalated to ShiftedCQR3.
	ShiftedPanels int
	// MaxResidentBytes is the peak matrix memory the driver held at
	// once — bounded by one panel plus the R-reduction chain, not m·n.
	MaxResidentBytes int64
	// ReadBytes and WrittenBytes are the streaming I/O volumes (2 reads
	// + 1 write of the matrix when Q is produced; 1 read for R only).
	ReadBytes, WrittenBytes int64
}

// DefaultPanelRows is the panel height FactorizeStreaming uses when
// Options.PanelRows is unset: max(4096, n), clamped to m.
const DefaultPanelRows = 4096

// resolvePanelRows applies the default and clamps.
func resolvePanelRows(panelRows, m, n int) int {
	b := panelRows
	if b == 0 {
		b = DefaultPanelRows
		if b < n {
			b = n
		}
	}
	if b > m {
		b = m
	}
	return b
}

// FactorizeStreaming factors the matrix behind src with the out-of-core
// sequential TSQR (arXiv 0809.2407 §4): row panels of Options.PanelRows
// rows are factored in core with CholeskyQR2 — escalating per panel to
// ShiftedCQR3 when ill-conditioning demands it (Options.CondEst beyond
// the CQR2 regime forces the escalation up front) — and the R factors
// merge through a chain of small stacked Householder QRs. When sink is
// non-nil a second pass over src writes the explicit Q into it; Result.Q
// is populated only for a SinkToDense. Peak resident matrix memory is
// one panel plus the O(panels·n²) reduction state — never m·n — and is
// reported in Result.Stream.MaxResidentBytes.
func FactorizeStreaming(src *MatrixSource, sink *MatrixSink, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("cacqr: FactorizeStreaming needs a source")
	}
	m, n := src.Dims()
	b := resolvePanelRows(opts.PanelRows, m, n)
	if b < n {
		return nil, fmt.Errorf("cacqr: PanelRows %d < n=%d", b, n)
	}

	sp := obs.FromContext(opts.ctx)
	ss := sp.Stage("stream")
	defer ss.End()
	ss.SetInt("m", int64(m))
	ss.SetInt("n", int64(n))
	ss.SetInt("panel_rows", int64(b))

	var snk stream.Sink
	if sink != nil {
		var err error
		snk, err = sink.open(m, n)
		if err != nil {
			return nil, err
		}
	}
	sres, err := stream.Factorize(src.src, snk, stream.Options{
		PanelRows: b,
		Workers:   opts.Workers,
		Shifted:   opts.CondEst > 1 && !core.CanCQR2Handle(opts.CondEst),
	})
	if err != nil {
		return nil, err
	}
	if sink != nil {
		if err := sink.finish(); err != nil {
			return nil, err
		}
	}
	ss.SetInt("panels", int64(sres.Panels))
	ss.SetInt("shifted_panels", int64(sres.ShiftedPanels))
	ss.SetInt("resident_bytes", 8*sres.MaxResidentWords)
	ss.SetInt("io_read_bytes", sres.ReadBytes)
	ss.SetInt("io_written_bytes", sres.WrittenBytes)

	res := &Result{
		R: fromLin(sres.R),
		Stats: CostStats{
			Flops: sres.Flops,
			Bytes: sres.ReadBytes + sres.WrittenBytes,
		},
		Stream: &StreamInfo{
			Panels:           sres.Panels,
			PanelRows:        sres.PanelRows,
			ShiftedPanels:    sres.ShiftedPanels,
			MaxResidentBytes: 8 * sres.MaxResidentWords,
			ReadBytes:        sres.ReadBytes,
			WrittenBytes:     sres.WrittenBytes,
		},
	}
	if sink != nil && sink.dense != nil {
		res.Q, err = sink.Dense()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ModelStreamTSQR predicts the streaming TSQR's cost (flops plus
// disk-tier I/O) for an m×n matrix in panels of panelRows rows; writeQ
// includes the Q write-back passes.
func ModelStreamTSQR(m, n, panelRows int, writeQ bool) (ModelCost, error) {
	return costmodel.StreamTSQR(m, n, panelRows, writeQ)
}

// ModelStreamTSQRMemory predicts the streaming driver's peak resident
// footprint in bytes.
func ModelStreamTSQRMemory(m, n, panelRows int) (int64, error) {
	w, err := costmodel.StreamTSQRMemory(m, n, panelRows)
	if err != nil {
		return 0, err
	}
	return 8 * w, nil
}

// materializeSource reads an entire source into a Dense — the path a
// generous memory budget takes when the planner decides the matrix
// fits in core after all.
func materializeSource(src *MatrixSource) (*Dense, error) {
	m, n := src.Dims()
	if err := src.src.Reset(); err != nil {
		return nil, err
	}
	snk := stream.NewDenseSink(m, n)
	if err := stream.Drain(src.src, snk, resolvePanelRows(0, m, n)); err != nil {
		return nil, err
	}
	return denseView(snk.Matrix()), nil
}
