package cacqr

import (
	"math"
	"testing"
)

// buildSystem constructs an exactly solvable overdetermined system
// A·xTrue = b with known solution.
func buildSystem(m, n int, seed int64) (*Dense, []float64, []float64) {
	a := RandomMatrix(m, n, seed)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j+1) / 2
	}
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue[j]
		}
		b[i] = s
	}
	return a, b, xTrue
}

func TestSolveLeastSquaresExact(t *testing.T) {
	a, b, xTrue := buildSystem(64, 8, 1)
	x, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], xTrue[j])
		}
	}
}

func TestSolveLeastSquaresSeq(t *testing.T) {
	a, b, xTrue := buildSystem(50, 5, 2)
	x, err := SolveLeastSquaresSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], xTrue[j])
		}
	}
}

func TestSolveLeastSquaresResidualMinimized(t *testing.T) {
	// With noise added, the LS solution must have a residual orthogonal
	// to the column space: ‖Aᵀ(Ax−b)‖ ≈ 0.
	a, b, _ := buildSystem(80, 6, 3)
	for i := range b {
		b[i] += 0.01 * math.Sin(float64(i))
	}
	x, err := SolveLeastSquares(a, b, GridSpec{C: 1, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < a.Cols; j++ {
		var g float64
		for i := 0; i < a.Rows; i++ {
			var pred float64
			for k := 0; k < a.Cols; k++ {
				pred += a.At(i, k) * x[k]
			}
			g += a.At(i, j) * (pred - b[i])
		}
		if math.Abs(g) > 1e-9 {
			t.Fatalf("normal equations violated at column %d: %g", j, g)
		}
	}
}

func TestSolveLeastSquaresSeqIllConditionedFallsBack(t *testing.T) {
	// κ ≈ 1e10 breaks CholeskyQR2; the solver must fall back to the
	// shifted three-pass variant and still produce a usable solution.
	m, n := 120, 6
	a := RandomWithCond(m, n, 1e10, 4)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j)
		}
	}
	x, err := SolveLeastSquaresSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The true solution is all-ones; with κ=1e10 we accept a loose
	// forward error but require the residual to be tiny.
	var rss, bss float64
	for i := 0; i < m; i++ {
		var pred float64
		for j := 0; j < n; j++ {
			pred += a.At(i, j) * x[j]
		}
		rss += (pred - b[i]) * (pred - b[i])
		bss += b[i] * b[i]
	}
	if math.Sqrt(rss/bss) > 1e-6 {
		t.Fatalf("relative residual %g too large", math.Sqrt(rss/bss))
	}
}

func TestSolveLeastSquaresValidation(t *testing.T) {
	a := RandomMatrix(8, 2, 5)
	if _, err := SolveLeastSquares(a, make([]float64, 7), GridSpec{C: 1, D: 2}, Options{}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
	if _, err := SolveLeastSquaresSeq(a, make([]float64, 3)); err == nil {
		t.Fatal("mismatched rhs accepted (seq)")
	}
}

// rankDeficient returns an m×n matrix of exact rank n−1 (one zero
// column, so the Gram matrix is exactly singular) and a compatible rhs.
func rankDeficient(m, n int, seed int64) (*Dense, []float64) {
	a := RandomMatrix(m, n, seed)
	for i := 0; i < m; i++ {
		a.Set(i, n/2, 0)
	}
	return a, make([]float64, m)
}

func TestSolveLeastSquaresRankDeficientErrors(t *testing.T) {
	// The CholeskyQR paths must report rank deficiency as an error, not
	// panic: the Gram matrix is singular, so the distributed Cholesky
	// fails cleanly.
	a, b := rankDeficient(64, 8, 6)
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 4}, Options{}); err == nil {
		t.Fatal("rank-deficient A accepted on the grid path")
	}
	if _, err := SolveLeastSquares(a, b, AutoGrid(8), Options{}); err == nil {
		t.Fatal("rank-deficient A accepted on the auto path")
	}
	// The sequential path falls back to the shifted (regularized)
	// variant; it may solve or error, but must never panic or return
	// non-finite values.
	if x, err := SolveLeastSquaresSeq(a, b); err == nil {
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("seq fallback returned non-finite x[%d] = %v", j, v)
			}
		}
	}
}

func TestSolveLeastSquaresInvalidOptionsError(t *testing.T) {
	a, b, _ := buildSystem(32, 4, 7)
	// Invalid grids: c ∤ d, d < c, negative c.
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 3}, Options{}); err == nil {
		t.Fatal("c∤d accepted")
	}
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 4, D: 2}, Options{}); err == nil {
		t.Fatal("d<c accepted")
	}
	if _, err := SolveLeastSquares(a, b, GridSpec{C: -1, D: 2}, Options{}); err == nil {
		t.Fatal("negative c accepted")
	}
	// Auto mode without a processor budget.
	if _, err := SolveLeastSquares(a, b, GridSpec{}, Options{}); err == nil {
		t.Fatal("auto grid without procs accepted")
	}
	// Invalid Workers knob on both fixed and auto modes.
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 1, D: 4}, Options{Workers: -2}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := SolveLeastSquares(a, b, AutoGrid(4), Options{Workers: -2}); err == nil {
		t.Fatal("negative Workers accepted (auto)")
	}
}

func TestSolveLeastSquaresAutoMode(t *testing.T) {
	a, b, xTrue := buildSystem(128, 8, 9)
	x, err := SolveLeastSquares(a, b, AutoGrid(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], xTrue[j])
		}
	}
}
