package cacqr

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"cacqr/internal/lin"
)

// buildSystem constructs an exactly solvable overdetermined system
// A·xTrue = b with known solution.
func buildSystem(m, n int, seed int64) (*Dense, []float64, []float64) {
	a := RandomMatrix(m, n, seed)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j+1) / 2
	}
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue[j]
		}
		b[i] = s
	}
	return a, b, xTrue
}

func TestSolveLeastSquaresExact(t *testing.T) {
	a, b, xTrue := buildSystem(64, 8, 1)
	x, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], xTrue[j])
		}
	}
}

func TestSolveLeastSquaresSeq(t *testing.T) {
	a, b, xTrue := buildSystem(50, 5, 2)
	x, err := SolveLeastSquaresSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], xTrue[j])
		}
	}
}

func TestSolveLeastSquaresResidualMinimized(t *testing.T) {
	// With noise added, the LS solution must have a residual orthogonal
	// to the column space: ‖Aᵀ(Ax−b)‖ ≈ 0.
	a, b, _ := buildSystem(80, 6, 3)
	for i := range b {
		b[i] += 0.01 * math.Sin(float64(i))
	}
	x, err := SolveLeastSquares(a, b, GridSpec{C: 1, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < a.Cols; j++ {
		var g float64
		for i := 0; i < a.Rows; i++ {
			var pred float64
			for k := 0; k < a.Cols; k++ {
				pred += a.At(i, k) * x[k]
			}
			g += a.At(i, j) * (pred - b[i])
		}
		if math.Abs(g) > 1e-9 {
			t.Fatalf("normal equations violated at column %d: %g", j, g)
		}
	}
}

func TestSolveLeastSquaresSeqIllConditionedFallsBack(t *testing.T) {
	// κ ≈ 1e10 breaks CholeskyQR2; the solver must fall back to the
	// shifted three-pass variant and still produce a usable solution.
	m, n := 120, 6
	a := RandomWithCond(m, n, 1e10, 4)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j)
		}
	}
	x, err := SolveLeastSquaresSeq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The true solution is all-ones; with κ=1e10 we accept a loose
	// forward error but require the residual to be tiny.
	var rss, bss float64
	for i := 0; i < m; i++ {
		var pred float64
		for j := 0; j < n; j++ {
			pred += a.At(i, j) * x[j]
		}
		rss += (pred - b[i]) * (pred - b[i])
		bss += b[i] * b[i]
	}
	if math.Sqrt(rss/bss) > 1e-6 {
		t.Fatalf("relative residual %g too large", math.Sqrt(rss/bss))
	}
}

func TestSolveLeastSquaresValidation(t *testing.T) {
	a := RandomMatrix(8, 2, 5)
	if _, err := SolveLeastSquares(a, make([]float64, 7), GridSpec{C: 1, D: 2}, Options{}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
	if _, err := SolveLeastSquaresSeq(a, make([]float64, 3)); err == nil {
		t.Fatal("mismatched rhs accepted (seq)")
	}
}

// rankDeficient returns an m×n matrix of exact rank n−1 (one zero
// column, so the Gram matrix is exactly singular) and a compatible rhs.
func rankDeficient(m, n int, seed int64) (*Dense, []float64) {
	a := RandomMatrix(m, n, seed)
	for i := 0; i < m; i++ {
		a.Set(i, n/2, 0)
	}
	return a, make([]float64, m)
}

func TestSolveLeastSquaresRankDeficientErrors(t *testing.T) {
	// The CholeskyQR paths must report rank deficiency as an error, not
	// panic: the Gram matrix is singular, so the distributed Cholesky
	// fails cleanly.
	a, b := rankDeficient(64, 8, 6)
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 4}, Options{}); err == nil {
		t.Fatal("rank-deficient A accepted on the grid path")
	}
	if _, err := SolveLeastSquares(a, b, AutoGrid(8), Options{}); err == nil {
		t.Fatal("rank-deficient A accepted on the auto path")
	}
	// The sequential path falls back to the shifted (regularized)
	// variant; it may solve or error, but must never panic or return
	// non-finite values.
	if x, err := SolveLeastSquaresSeq(a, b); err == nil {
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("seq fallback returned non-finite x[%d] = %v", j, v)
			}
		}
	}
}

func TestSolveLeastSquaresInvalidOptionsError(t *testing.T) {
	a, b, _ := buildSystem(32, 4, 7)
	// Invalid grids: c ∤ d, d < c, negative c.
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 3}, Options{}); err == nil {
		t.Fatal("c∤d accepted")
	}
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 4, D: 2}, Options{}); err == nil {
		t.Fatal("d<c accepted")
	}
	if _, err := SolveLeastSquares(a, b, GridSpec{C: -1, D: 2}, Options{}); err == nil {
		t.Fatal("negative c accepted")
	}
	// Auto mode without a processor budget.
	if _, err := SolveLeastSquares(a, b, GridSpec{}, Options{}); err == nil {
		t.Fatal("auto grid without procs accepted")
	}
	// Invalid Workers knob on both fixed and auto modes.
	if _, err := SolveLeastSquares(a, b, GridSpec{C: 1, D: 4}, Options{Workers: -2}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := SolveLeastSquares(a, b, AutoGrid(4), Options{Workers: -2}); err == nil {
		t.Fatal("negative Workers accepted (auto)")
	}
}

func TestSolveLeastSquaresAutoMode(t *testing.T) {
	a, b, xTrue := buildSystem(128, 8, 9)
	x, err := SolveLeastSquares(a, b, AutoGrid(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], xTrue[j])
		}
	}
}

// householderLS is the reference solution x = R⁻¹·Qᵀ·b from the
// classical Householder factorization.
func householderLS(t *testing.T, a *Dense, b []float64) []float64 {
	t.Helper()
	q, r, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := solveWithQR(q, r, b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func relErr(x, ref []float64) float64 {
	var d, n float64
	for j := range x {
		d += (x[j] - ref[j]) * (x[j] - ref[j])
		n += ref[j] * ref[j]
	}
	return math.Sqrt(d / n)
}

// TestSolveLeastSquaresFixedGridIllConditioned is the acceptance-shaped
// regression for the condition-aware fixed-grid solve: before the fix, a
// κ=1e10 input on a fixed grid either failed outright (CholeskyQR2 Gram
// breakdown) or silently lost the solution's accuracy; now the solve
// path reroutes to the shifted three-pass variant and matches the
// Householder reference to 1e-6.
func TestSolveLeastSquaresFixedGridIllConditioned(t *testing.T) {
	m, n := 256, 8
	a := RandomWithCond(m, n, 1e10, 11)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		b[i] = math.Sin(float64(i)) + 0.5
	}
	ref := householderLS(t, a, b)
	for _, spec := range []GridSpec{{C: 1, D: 4}, {C: 2, D: 4}} {
		x, err := SolveLeastSquares(a, b, spec, Options{})
		if err != nil {
			t.Fatalf("grid %dx%dx%d: %v", spec.C, spec.D, spec.C, err)
		}
		if e := relErr(x, ref); e > 1e-6 {
			t.Fatalf("grid %dx%dx%d: relative error vs Householder reference %g > 1e-6", spec.C, spec.D, spec.C, e)
		}
	}
	// With an explicit hint the estimator is skipped but the routing is
	// the same.
	x, err := SolveLeastSquares(a, b, GridSpec{C: 2, D: 4}, Options{CondEst: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(x, ref); e > 1e-6 {
		t.Fatalf("hinted solve: relative error %g > 1e-6", e)
	}
}

// TestFixedGridRoutingRecorded pins the internal routing contract: the
// fixed-grid solve path records the condition estimate it routed on, and
// ill-conditioned inputs actually leave the requested grid.
func TestFixedGridRoutingRecorded(t *testing.T) {
	m, n := 256, 8
	well := RandomMatrix(m, n, 12)
	res, err := factorizeFixedCondAware(well, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CondEst <= 0 || math.IsInf(res.CondEst, 0) {
		t.Fatalf("well-conditioned estimate not recorded: %g", res.CondEst)
	}
	ill := RandomWithCond(m, n, 1e10, 13)
	res, err = factorizeFixedCondAware(ill, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CondEst < 1e8 {
		t.Fatalf("κ=1e10 estimate recorded as %g", res.CondEst)
	}
	if o := OrthogonalityError(res.Q); o > 1e-8 {
		t.Fatalf("rerouted factorization lost orthogonality: %g", o)
	}
	// Beyond even the shifted regime the route is plain TSQR; at κ=1e15
	// with an explicit hint the factors must still be orthogonal.
	res, err = factorizeFixedCondAware(ill, GridSpec{C: 2, D: 4}, Options{CondEst: 1e15})
	if err != nil {
		t.Fatal(err)
	}
	if o := OrthogonalityError(res.Q); o > 1e-8 {
		t.Fatalf("TSQR route lost orthogonality: %g", o)
	}
	if res.CondEst != 1e15 {
		t.Fatalf("explicit hint not recorded: %g", res.CondEst)
	}
}

// TestSolveLeastSquaresSeqPropagatesNonBreakdownErrors pins the fallback
// gate: only the ErrIllConditioned Gram breakdown retries through
// ShiftedCQR3; anything else (here a shape error) propagates verbatim.
func TestSolveLeastSquaresSeqPropagatesNonBreakdownErrors(t *testing.T) {
	wide := RandomMatrix(4, 8, 14) // m < n: a shape error, not a breakdown
	_, err := SolveLeastSquaresSeq(wide, make([]float64, 4))
	if err == nil {
		t.Fatal("wide matrix accepted")
	}
	if !errors.Is(err, lin.ErrShape) {
		t.Fatalf("err = %v, want the original lin.ErrShape", err)
	}
	if errors.Is(err, ErrIllConditioned) {
		t.Fatalf("shape error wrapped as ill-conditioning: %v", err)
	}
	// And the breakdown path still falls back (the public error value
	// is the gate callers can test themselves).
	if _, _, err := CholeskyQR2(RandomWithCond(64, 8, 1e10, 15)); !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("κ=1e10 CholeskyQR2 error = %v, want ErrIllConditioned", err)
	}
}

// TestSolveWithQRNearSingularPivot pins the ε-scaled pivot tolerance: a
// denormal pivot passes an exact d == 0 test but must be rejected, not
// turned into Inf/NaN solution components.
func TestSolveWithQRNearSingularPivot(t *testing.T) {
	n := 4
	q := NewDense(n, n)
	r := NewDense(n, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
		r.Set(j, j, 1)
	}
	r.Set(n-1, n-1, 5e-324) // denormal: d == 0 is false, 1/d is +Inf
	b := []float64{1, 1, 1, 1}
	x, err := solveWithQR(q, r, b)
	if err == nil {
		t.Fatalf("denormal pivot accepted, x = %v", x)
	}
	// An exactly zero pivot still errors.
	r.Set(n-1, n-1, 0)
	if _, err := solveWithQR(q, r, b); err == nil {
		t.Fatal("zero pivot accepted")
	}
	// Healthy small-but-significant pivots still pass.
	r.Set(n-1, n-1, 1e-6)
	x, err = solveWithQR(q, r, b)
	if err != nil {
		t.Fatalf("healthy pivot rejected: %v", err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", x)
		}
	}
}

// TestFactorizeTSQRFastFailsBeforeSpinUp pins the hoisted shape check:
// an invalid m % procs must be detected before the simulated grid
// launches. The 1ns timeout makes the distinction observable — if the
// ranks had spun up, the run could only end in a timeout or rank error,
// never this clean validation message.
func TestFactorizeTSQRFastFailsBeforeSpinUp(t *testing.T) {
	a := RandomMatrix(100, 4, 16)
	before := runtime.NumGoroutine()
	_, err := FactorizeTSQR(a, 1<<14, 0, Options{Timeout: time.Nanosecond})
	if err == nil {
		t.Fatal("m=100, P=16384 accepted")
	}
	if !strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("err = %v, want the divisibility validation error", err)
	}
	if after := runtime.NumGoroutine(); after > before+64 {
		t.Fatalf("goroutines grew %d → %d: the simulated grid spun up before validation", before, after)
	}
}
