package cacqr

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"testing"

	"cacqr/internal/costmodel"
)

// TestAutoFactorizeEndToEnd is the acceptance scenario: a seeded
// 1024×64 matrix, p ∈ {8, 64}. The factors must meet the same
// tolerances as the FactorizeOnGrid tests, and the planner's predicted
// cost must match the simulated runtime's measured cost exactly up to
// the final Q Allgather (the validation contract the fixed-grid tests
// already enforce).
func TestAutoFactorizeEndToEnd(t *testing.T) {
	a := RandomMatrix(1024, 64, 42)
	for _, procs := range []int{8, 64} {
		res, err := AutoFactorize(a, procs, Options{})
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
		if res.Plan == nil {
			t.Fatalf("p=%d: no plan recorded", procs)
		}
		if e := OrthogonalityError(res.Q); e > 1e-11 {
			t.Fatalf("p=%d (%s): orthogonality %g", procs, res.Plan.Variant, e)
		}
		if e := ResidualNorm(a, res.Q, res.R); e > 1e-11 {
			t.Fatalf("p=%d (%s): residual %g", procs, res.Plan.Variant, e)
		}
		if res.Plan.Procs > procs {
			t.Fatalf("p=%d: plan uses %d ranks", procs, res.Plan.Procs)
		}
		// The tall 1024×64 shape is the paper's 1D regime.
		if res.Plan.Variant != Variant1DCQR2 {
			t.Fatalf("p=%d: expected the 1D regime, got %v", procs, res.Plan)
		}
		// Measured vs predicted: flops are exactly the model's (the
		// gather moves data, not flops); communication is the model plus
		// exactly the final Q Allgather.
		if res.Stats.Flops != res.Plan.Cost.TotalFlops() {
			t.Fatalf("p=%d: measured flops %d != predicted %d", procs, res.Stats.Flops, res.Plan.Cost.TotalFlops())
		}
		gather := costmodel.Allgather(int64(1024*64), res.Plan.Procs)
		if res.Stats.Msgs != res.Plan.Cost.Msgs+gather.Msgs {
			t.Fatalf("p=%d: measured msgs %d != predicted %d + gather %d",
				procs, res.Stats.Msgs, res.Plan.Cost.Msgs, gather.Msgs)
		}
		if res.Stats.Words != res.Plan.Cost.Words+gather.Words {
			t.Fatalf("p=%d: measured words %d != predicted %d + gather %d",
				procs, res.Stats.Words, res.Plan.Cost.Words, gather.Words)
		}
	}
}

// TestAutoFactorizeDispatchesGridVariant forces the planner into the
// c × d × c family: a bandwidth-starved machine makes replication
// attractive and a per-rank memory budget rules out the comm-free
// sequential and 1D plans (whose footprint is the whole matrix or a
// full row block).
func TestAutoFactorizeDispatchesGridVariant(t *testing.T) {
	bw := Machine{Name: "bw-bound", AlphaSec: 1e-9, InjBandwidth: 1e6,
		PeakNodeFlops: 1e13, PPN: 1, Duplex: 1, GemmEff: 1, UpdateEff: 1, PanelEff: 1}
	a := RandomMatrix(128, 64, 7)
	res, err := AutoFactorize(a, 64, Options{PlanMachine: &bw, MemBudget: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != VariantCACQR2 && res.Plan.Variant != VariantPanelCACQR2 {
		t.Fatalf("budgeted bandwidth-bound plan is %v, want a grid-family variant", res.Plan)
	}
	if res.Plan.C < 2 {
		t.Fatalf("grid plan has c=%d", res.Plan.C)
	}
	if res.Plan.MemBytes() > 30000 {
		t.Fatalf("plan footprint %d over budget", res.Plan.MemBytes())
	}
	if e := OrthogonalityError(res.Q); e > 1e-10 {
		t.Fatalf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-10 {
		t.Fatalf("residual %g", e)
	}
	if res.Stats.Flops != res.Plan.Cost.TotalFlops() {
		t.Fatalf("measured flops %d != predicted %d", res.Stats.Flops, res.Plan.Cost.TotalFlops())
	}
	if res.Stats.Msgs < res.Plan.Cost.Msgs || res.Stats.Words < res.Plan.Cost.Words {
		t.Fatalf("measured comm (%d, %d) below prediction (%d, %d)",
			res.Stats.Msgs, res.Stats.Words, res.Plan.Cost.Msgs, res.Plan.Cost.Words)
	}
}

func TestAutoFactorizeSequentialOnOneRank(t *testing.T) {
	a := RandomMatrix(96, 12, 3)
	res, err := AutoFactorize(a, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != VariantSequential || res.Plan.Procs != 1 {
		t.Fatalf("p=1 plan: %v", res.Plan)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-12 {
		t.Fatalf("residual %g", e)
	}
	if res.Stats.Flops != res.Plan.Cost.TotalFlops() {
		t.Fatalf("measured flops %d != predicted %d", res.Stats.Flops, res.Plan.Cost.TotalFlops())
	}
	if res.Stats.Words != 0 || res.Stats.Msgs != 0 {
		t.Fatalf("sequential run communicated: %+v", res.Stats)
	}
}

func TestFactorize1D(t *testing.T) {
	a := RandomMatrix(256, 16, 11)
	res, err := Factorize1D(a, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(res.Q); e > 1e-12 {
		t.Fatalf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-12 {
		t.Fatalf("residual %g", e)
	}
	// R agrees with the sequential reference (unique for positive diag).
	_, r, err := CholeskyQR2(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Data {
		if math.Abs(r.Data[i]-res.R.Data[i]) > 1e-9 {
			t.Fatalf("R element %d differs: %g vs %g", i, r.Data[i], res.R.Data[i])
		}
	}
	// The Workers knob may change wall-clock only: factors and measured
	// costs must be bitwise identical.
	res4, err := Factorize1D(a, 8, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Q.Data {
		if res.Q.Data[i] != res4.Q.Data[i] {
			t.Fatalf("Workers=4: Q differs at %d", i)
		}
	}
	if res.Stats != res4.Stats {
		t.Fatalf("Workers=4 changed measured costs: %+v vs %+v", res.Stats, res4.Stats)
	}
	// Error paths.
	if _, err := Factorize1D(a, 7, Options{}); err == nil {
		t.Fatal("indivisible m accepted")
	}
	if _, err := Factorize1D(a, 0, Options{}); err == nil {
		t.Fatal("zero procs accepted")
	}
}

func TestFactorizePlanExecutesChosenCandidate(t *testing.T) {
	a := RandomMatrix(256, 16, 5)
	plans, err := PlanGrid(256, 16, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Execute the runner-up, not the winner: FactorizePlan must honor
	// the caller's choice.
	pick := plans[1]
	res, err := FactorizePlan(a, pick, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Variant != pick.Variant || res.Plan.Procs != pick.Procs {
		t.Fatalf("executed %+v, picked %+v", res.Plan, pick)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-10 {
		t.Fatalf("residual %g", e)
	}
	// A malformed hand-built plan (PGEQRF with a zero grid) is rejected
	// with an error, not a panic.
	if _, err := FactorizePlan(a, Plan{Variant: VariantPGEQRF}, Options{}); err == nil {
		t.Fatal("zero-grid PGEQRF plan executed")
	}
	if _, err := FactorizePlan(a, Plan{Variant: Variant("nonsense")}, Options{}); err == nil {
		t.Fatal("unknown variant executed")
	}
}

func TestIncludeBaselinesSurfacesPGEQRFRow(t *testing.T) {
	plans, err := PlanGrid(4096, 256, 64, Options{IncludeBaselines: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range plans {
		if p.Variant == VariantPGEQRF {
			found = true
			if !p.Executable {
				t.Fatal("PGEQRF reference row not executable (every priced row must dispatch)")
			}
		}
	}
	if !found {
		t.Fatal("IncludeBaselines did not surface a PGEQRF reference row")
	}
}

func TestPartialPlanMachineRejected(t *testing.T) {
	// A custom machine missing the fields Machine.Time divides by must
	// be an error, not a silent fallback to Stampede2.
	partial := Machine{Name: "partial", AlphaSec: 1e-6, InjBandwidth: 1e9}
	if _, err := PlanGrid(1024, 64, 16, Options{PlanMachine: &partial}); err == nil {
		t.Fatal("partially-specified PlanMachine accepted")
	}
	if _, err := AutoFactorize(RandomMatrix(64, 8, 1), 4, Options{PlanMachine: &partial}); err == nil {
		t.Fatal("partially-specified PlanMachine accepted by AutoFactorize")
	}
}

func TestPlanGridRankedAndBudgeted(t *testing.T) {
	plans, err := PlanGrid(4096, 256, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Seconds < plans[i-1].Seconds {
			t.Fatalf("plans not ranked at %d", i)
		}
	}
	budget := plans[0].MemBytes() - 1
	rest, err := PlanGrid(4096, 256, 64, Options{MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rest {
		if p.MemBytes() > budget {
			t.Fatalf("plan %v over budget %d", p, budget)
		}
	}
}

func TestNegativeWorkersRejectedEverywhere(t *testing.T) {
	a := RandomMatrix(32, 4, 1)
	bad := Options{Workers: -1}
	if _, err := FactorizeOnGrid(a, GridSpec{C: 1, D: 4}, bad); err == nil {
		t.Fatal("FactorizeOnGrid accepted negative Workers")
	}
	if _, err := FactorizeTSQR(a, 4, 0, bad); err == nil {
		t.Fatal("FactorizeTSQR accepted negative Workers")
	}
	if _, err := Factorize1D(a, 4, bad); err == nil {
		t.Fatal("Factorize1D accepted negative Workers")
	}
	if _, err := AutoFactorize(a, 4, bad); err == nil {
		t.Fatal("AutoFactorize accepted negative Workers")
	}
	if _, err := PlanGrid(32, 4, 4, bad); err == nil {
		t.Fatal("PlanGrid accepted negative Workers")
	}
}
