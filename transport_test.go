package cacqr

// End-to-end coverage of the pluggable transport: every distributed
// variant must produce the same factors over real TCP processes as on
// the simulated runtime, with wire-byte counters populated. The
// in-process tests serve workers on goroutine listeners; the
// real-process tests re-exec this test binary as `worker` helper
// processes, so the factorization genuinely crosses OS process
// boundaries.

import (
	"context"
	"errors"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startLocalWorkers serves n in-process workers on loopback listeners.
func startLocalWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addrs[i] = ln.Addr().String()
		go ServeWorker(ln)
		t.Cleanup(func() { ln.Close() })
	}
	return addrs
}

func denseMaxDiff(a, b *Dense) float64 {
	if a == nil || b == nil {
		return math.Inf(1)
	}
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := range a.Data {
		if diff := math.Abs(a.Data[i] - b.Data[i]); diff > d {
			d = diff
		}
	}
	return d
}

// TestTCPTransportMatchesSim factors the same matrix on the simulated
// runtime and over TCP workers for every distributed variant, and
// demands identical factors to 1e-13 plus populated byte counters on
// the TCP side.
func TestTCPTransportMatchesSim(t *testing.T) {
	a := RandomMatrix(1024, 64, 7)
	workers := startLocalWorkers(t, 3)
	tcp := Options{Transport: TCPTransport(workers...), Timeout: time.Minute}

	cases := []struct {
		name string
		run  func(opts Options) (*Result, error)
	}{
		{"1d", func(opts Options) (*Result, error) { return Factorize1D(a, 4, opts) }},
		{"shifted1d", func(opts Options) (*Result, error) { return FactorizeShifted1D(a, 4, opts) }},
		{"tsqr", func(opts Options) (*Result, error) { return FactorizeTSQR(a, 4, 0, opts) }},
		{"grid", func(opts Options) (*Result, error) { return FactorizeOnGrid(a, GridSpec{C: 1, D: 4}, opts) }},
		{"pgeqrf", func(opts Options) (*Result, error) { return FactorizePGEQRF(a, 2, 2, 16, opts) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := tc.run(Options{})
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			over, err := tc.run(tcp)
			if err != nil {
				t.Fatalf("tcp run: %v", err)
			}
			if d := denseMaxDiff(sim.Q, over.Q); d > 1e-13 {
				t.Errorf("Q differs between transports by %g", d)
			}
			if d := denseMaxDiff(sim.R, over.R); d > 1e-13 {
				t.Errorf("R differs between transports by %g", d)
			}
			if sim.Stats.Bytes != 0 {
				t.Errorf("sim run reported %d wire bytes", sim.Stats.Bytes)
			}
			if over.Stats.Bytes <= 0 {
				t.Errorf("tcp run reported no wire bytes")
			}
			if over.Stats.Msgs <= 0 || over.Stats.Words <= 0 {
				t.Errorf("tcp counters not populated: %+v", over.Stats)
			}
		})
	}
}

// TestTCPTransportReusesWorkerPool runs plans of different rank counts
// against one worker pool: a job on np ranks uses the first np−1
// workers, so a pool sized for the largest plan serves smaller ones too.
func TestTCPTransportReusesWorkerPool(t *testing.T) {
	a := RandomMatrix(256, 16, 3)
	workers := startLocalWorkers(t, 3)
	opts := Options{Transport: TCPTransport(workers...), Timeout: time.Minute}
	for _, procs := range []int{1, 2, 4} {
		if _, err := Factorize1D(a, procs, opts); err != nil {
			t.Fatalf("procs=%d over 3-worker pool: %v", procs, err)
		}
	}
}

func TestTCPTransportTooFewWorkers(t *testing.T) {
	a := RandomMatrix(256, 16, 3)
	workers := startLocalWorkers(t, 1)
	opts := Options{Transport: TCPTransport(workers...), Timeout: time.Minute}
	_, err := Factorize1D(a, 4, opts)
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("4-rank job on 1 worker returned %v, want worker-count error", err)
	}
}

// TestSubmitCtxCancellation: a canceled request context must abort the
// submission with the context's error instead of running it.
func TestSubmitCtxCancellation(t *testing.T) {
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = srv.SubmitCtx(ctx, SubmitRequest{A: RandomMatrix(256, 16, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit returned %v, want context.Canceled", err)
	}
}

// TestHelperWorkerProcess is not a test: it is the body of the worker
// processes the real-process tests spawn. It serves ranks on a loopback
// listener, publishes the address through the file named by
// CACQR_WORKER_ADDR_FILE, and runs until the parent kills it.
func TestHelperWorkerProcess(t *testing.T) {
	addrFile := os.Getenv("CACQR_WORKER_ADDR_FILE")
	if addrFile == "" {
		t.Skip("helper body for the real-process transport tests")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper listen: %v", err)
	}
	// Write to a temp name first so the parent never reads a partial
	// address.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("helper addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("helper addr file: %v", err)
	}
	if err := ServeWorker(ln); err != nil {
		t.Fatalf("helper serve: %v", err)
	}
}

// startWorkerProcesses spawns n real OS worker processes by re-execing
// the test binary into TestHelperWorkerProcess, and returns their
// addresses once all have come up.
func startWorkerProcesses(t *testing.T, n int) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrFile := filepath.Join(t.TempDir(), "addr")
		cmd := exec.Command(exe, "-test.run=^TestHelperWorkerProcess$", "-test.v")
		cmd.Env = append(os.Environ(), "CACQR_WORKER_ADDR_FILE="+addrFile)
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker process: %v", err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		deadline := time.Now().Add(20 * time.Second)
		for {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				addrs[i] = string(b)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker process %d never published its address", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return addrs
}

// TestFactorizationAcrossRealProcesses is the acceptance path: a
// 1024×64 factorization sharded over real OS worker processes through
// the TCP transport must reproduce the simulated factors to 1e-13, with
// wire-byte counters populated.
func TestFactorizationAcrossRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	a := RandomMatrix(1024, 64, 11)
	workers := startWorkerProcesses(t, 3)
	tcp := Options{Transport: TCPTransport(workers...), Timeout: time.Minute}

	for _, tc := range []struct {
		name string
		run  func(opts Options) (*Result, error)
	}{
		{"cqr2-1d", func(opts Options) (*Result, error) { return Factorize1D(a, 4, opts) }},
		{"tsqr", func(opts Options) (*Result, error) { return FactorizeTSQR(a, 4, 0, opts) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := tc.run(Options{})
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			over, err := tc.run(tcp)
			if err != nil {
				t.Fatalf("tcp run across processes: %v", err)
			}
			if d := denseMaxDiff(sim.Q, over.Q); d > 1e-13 {
				t.Errorf("Q differs between transports by %g", d)
			}
			if d := denseMaxDiff(sim.R, over.R); d > 1e-13 {
				t.Errorf("R differs between transports by %g", d)
			}
			if over.Stats.Bytes <= 0 {
				t.Errorf("no wire bytes counted across real processes")
			}
			if q := OrthogonalityError(over.Q); q > 1e-10 {
				t.Errorf("Q from real processes lost orthogonality: %g", q)
			}
			if res := ResidualNorm(a, over.Q, over.R); res > 1e-12 {
				t.Errorf("A ≠ QR across real processes: residual %g", res)
			}
		})
	}
}
