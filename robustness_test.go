package cacqr

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"strings"
	"testing"

	"cacqr/internal/costmodel"
	"cacqr/internal/lin"
	"cacqr/internal/testmat"
)

// E2e dispatch tests for the condition-aware planner and the newly
// executable plan rows: PGEQRF and blocked TSQR. Together with the
// κ-sweep property tests in internal/core and the routing tests in
// internal/plan, these are the acceptance scenario of the robustness
// milestone: every plan row PlanGrid returns executes, and κ ≳ 10⁷
// inputs reach O(ε) orthogonality through AutoFactorize while plain
// CQR2 measurably cannot.

func condMatrix(t *testing.T, m, n int, kappa float64, seed int64) *Dense {
	t.Helper()
	a, err := FromData(m, n, testmat.Flatten(testmat.WithCond(m, n, kappa, seed)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAutoFactorizeRoutesOnCondEst(t *testing.T) {
	const m, n, procs = 1024, 64, 16
	// Below the threshold: the hint is benign and the tall shape stays
	// in the 1D CholeskyQR2 regime.
	low := condMatrix(t, m, n, 1e3, 4)
	res, err := AutoFactorize(low, procs, Options{CondEst: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != Variant1DCQR2 {
		t.Fatalf("κ=1e3 routed to %v, want 1d-cqr2", res.Plan)
	}
	if res.CondEst != 1e3 {
		t.Fatalf("recorded CondEst %g, want the caller's hint", res.CondEst)
	}
	// Above it: the same shape must leave the CQR2 family for the
	// shifted variant and still deliver machine-precision factors.
	high := condMatrix(t, m, n, 1e10, 4)
	res, err = AutoFactorize(high, procs, Options{CondEst: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != VariantShiftedCQR3 {
		t.Fatalf("κ=1e10 routed to %v, want shifted-cqr3", res.Plan)
	}
	if e := OrthogonalityError(res.Q); e > 1e-8 {
		t.Fatalf("κ=1e10 shifted run: orthogonality %g", e)
	}
	if e := ResidualNorm(high, res.Q, res.R); e > 1e-10 {
		t.Fatalf("κ=1e10 shifted run: residual %g", e)
	}
	// The shifted dispatch obeys the same validation contract as every
	// other variant: measured cost = predicted cost + the final gather.
	if res.Stats.Flops != res.Plan.Cost.TotalFlops() {
		t.Fatalf("measured flops %d != predicted %d", res.Stats.Flops, res.Plan.Cost.TotalFlops())
	}
	gather := costmodel.Allgather(int64(m*n), res.Plan.Procs)
	if res.Stats.Msgs != res.Plan.Cost.Msgs+gather.Msgs || res.Stats.Words != res.Plan.Cost.Words+gather.Words {
		t.Fatalf("measured comm (%d, %d) != predicted (%d, %d) + gather (%d, %d)",
			res.Stats.Msgs, res.Stats.Words, res.Plan.Cost.Msgs, res.Plan.Cost.Words, gather.Msgs, gather.Words)
	}
}

func TestAutoFactorizeEstimatesCondWhenUnset(t *testing.T) {
	// The acceptance scenario with no hint at all: κ=1e10 at 1024×64.
	// AutoFactorize must measure the conditioning itself, route off the
	// CQR2 family, and return Q with ‖QᵀQ−I‖ ≤ 1e-8 — while plain CQR2
	// on the same matrix measurably does not deliver that.
	const m, n, procs = 1024, 64, 16
	a := condMatrix(t, m, n, 1e10, 4)
	res, err := AutoFactorize(a, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CondEst <= 1e7 {
		t.Fatalf("estimator recorded κ=%g, want ≫ 1e7", res.CondEst)
	}
	if res.Plan.Variant != VariantShiftedCQR3 && res.Plan.Variant != VariantTSQR {
		t.Fatalf("estimated routing chose %v", res.Plan)
	}
	if e := OrthogonalityError(res.Q); e > 1e-8 {
		t.Fatalf("auto-routed orthogonality %g", e)
	}
	if q, _, err := CholeskyQR2(a); err == nil {
		if e := OrthogonalityError(q); e <= 1e-8 {
			t.Fatalf("plain CQR2 unexpectedly also delivered %g", e)
		}
	}
	// Well-conditioned input, no hint: the estimator must not scare the
	// planner away from the cheap family.
	b := RandomMatrix(1024, 64, 42)
	res, err = AutoFactorize(b, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != Variant1DCQR2 {
		t.Fatalf("benign matrix routed to %v", res.Plan)
	}
	if res.CondEst <= 0 || math.IsInf(res.CondEst, 1) {
		t.Fatalf("benign matrix estimated κ=%g", res.CondEst)
	}
}

func TestFactorizePlanExecutesPGEQRFRow(t *testing.T) {
	// Wire-up acceptance: a PGEQRF row from the planner executes and
	// matches the Householder reference factorization to 1e-12. No
	// measured-vs-predicted cost assertion here by design: the PGEQRF
	// row's Cost prices the factorization only, while execution also
	// pays the unmodeled explicit-Q output path (see the FactorizePGEQRF
	// and PlanGrid docs) — the exact contract is asserted for the
	// CQR-family and TSQR rows instead.
	const m, n = 256, 64
	a := RandomMatrix(m, n, 9)
	plans, err := PlanGrid(m, n, 8, Options{IncludeBaselines: true})
	if err != nil {
		t.Fatal(err)
	}
	var row *Plan
	for i := range plans {
		if plans[i].Variant == VariantPGEQRF {
			row = &plans[i]
			break
		}
	}
	if row == nil {
		t.Fatal("no PGEQRF row surfaced")
	}
	if !row.Executable {
		t.Fatalf("PGEQRF row not executable: %v", row)
	}
	res, err := FactorizePlan(a, *row, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesHouseholder(t, a, res, 1e-12)

	// And a genuinely 2D grid through the direct entry point, same
	// contract.
	res, err = FactorizePGEQRF(a, 4, 2, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Msgs == 0 || res.Stats.Words == 0 {
		t.Fatalf("4x2 grid did not communicate: %+v", res.Stats)
	}
	assertMatchesHouseholder(t, a, res, 1e-12)
}

func TestFactorizePlanExecutesBlockedTSQRRow(t *testing.T) {
	// 256×64 on 8 ranks: m/p = 32 < n, so the plan list contains
	// blocked TSQR rows (panelWidth > 0). Each must execute, match the
	// reference factorization to 1e-12, and charge exactly its modeled
	// cost plus the final Q gather.
	const m, n, procs = 256, 64, 8
	a := RandomMatrix(m, n, 10)
	plans, err := PlanGrid(m, n, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, p := range plans {
		if p.Variant != VariantTSQR || p.PanelWidth == 0 || p.PanelWidth == n {
			continue
		}
		res, err := FactorizePlan(a, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		assertMatchesHouseholder(t, a, res, 1e-12)
		if res.Stats.Flops != p.Cost.TotalFlops() {
			t.Fatalf("%v: measured flops %d != predicted %d", p, res.Stats.Flops, p.Cost.TotalFlops())
		}
		gather := costmodel.Allgather(int64(m*n), p.Procs)
		if res.Stats.Msgs != p.Cost.Msgs+gather.Msgs || res.Stats.Words != p.Cost.Words+gather.Words {
			t.Fatalf("%v: measured comm (%d, %d) != predicted + gather (%d, %d)",
				p, res.Stats.Msgs, res.Stats.Words, p.Cost.Msgs+gather.Msgs, p.Cost.Words+gather.Words)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no blocked TSQR rows to execute")
	}
}

func TestEveryPlanRowIsExecutable(t *testing.T) {
	// The milestone's headline: every row PlanGrid returns — baselines
	// included — executes through FactorizePlan and reproduces A.
	const m, n, procs = 128, 16, 8
	a := RandomMatrix(m, n, 3)
	plans, err := PlanGrid(m, n, procs, Options{IncludeBaselines: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Variant]bool{}
	for _, p := range plans {
		if !p.Executable {
			t.Fatalf("non-executable row: %v", p)
		}
		if seen[p.Variant] {
			continue // one execution per variant keeps the test fast
		}
		seen[p.Variant] = true
		res, err := FactorizePlan(a, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if e := ResidualNorm(a, res.Q, res.R); e > 1e-11 {
			t.Fatalf("%v: residual %g", p, e)
		}
		if e := OrthogonalityError(res.Q); e > 1e-11 {
			t.Fatalf("%v: orthogonality %g", p, e)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("only variants %v exercised", seen)
	}
}

func TestKappaSweepTSQRUnconditionallyStable(t *testing.T) {
	// The plain Householder tree must hold O(ε) orthogonality and
	// residual at every κ of the sweep — including where both
	// CholeskyQR2 and the one-shift CQR3 break down. This is what makes
	// it a safe routing target for the planner's worst case. The
	// blocked variant's cross-panel BGS2 updates lose orthogonality as
	// O(ε·κ) — the planner gates it by exactly that bound
	// (plan.PredictOrthogonality), asserted here against measurements.
	const m, n, procs = 256, 32, 4
	for _, kappa := range testmat.Kappas {
		a := condMatrix(t, m, n, kappa, 17)
		res, err := FactorizeTSQR(a, procs, 0, Options{})
		if err != nil {
			t.Fatalf("κ=%g: %v", kappa, err)
		}
		if e := OrthogonalityError(res.Q); e > 1e-12 {
			t.Fatalf("κ=%g: TSQR orthogonality %g", kappa, e)
		}
		if e := ResidualNorm(a, res.Q, res.R); e > 1e-12 {
			t.Fatalf("κ=%g: TSQR residual %g", kappa, e)
		}
		res, err = FactorizeTSQR(a, procs, 8, Options{})
		if err != nil {
			t.Fatalf("κ=%g blocked: %v", kappa, err)
		}
		orth := OrthogonalityError(res.Q)
		if bound := math.Max(8*lin.Eps, kappa*lin.Eps); orth > bound {
			t.Fatalf("κ=%g: blocked TSQR orthogonality %g over the modeled ε·κ bound %g", kappa, orth, bound)
		}
		if kappa <= 1e5 && orth > 1e-12 {
			t.Fatalf("κ=%g: blocked TSQR orthogonality %g inside its O(ε) regime", kappa, orth)
		}
		if e := ResidualNorm(a, res.Q, res.R); e > 1e-12 {
			t.Fatalf("κ=%g: blocked TSQR residual %g", kappa, e)
		}
	}
}

func TestFactorizeShifted1DErrorPaths(t *testing.T) {
	a := RandomMatrix(96, 8, 1)
	if _, err := FactorizeShifted1D(a, 7, Options{}); err == nil {
		t.Fatal("indivisible m accepted")
	}
	if _, err := FactorizeShifted1D(a, 0, Options{}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := FactorizeShifted1D(a, 4, Options{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

func TestFactorizePGEQRFErrorPaths(t *testing.T) {
	a := RandomMatrix(64, 16, 1)
	if _, err := FactorizePGEQRF(a, 0, 2, 4, Options{}); err == nil {
		t.Fatal("zero pr accepted")
	}
	if _, err := FactorizePGEQRF(a, 3, 1, 4, Options{}); err == nil {
		t.Fatal("pr ∤ m accepted")
	}
	if _, err := FactorizePGEQRF(a, 4, 1, 5, Options{}); err == nil {
		t.Fatal("nb ∤ n accepted")
	}
	wide := RandomMatrix(16, 64, 1)
	if _, err := FactorizePGEQRF(wide, 4, 1, 4, Options{}); err == nil {
		t.Fatal("m < n accepted")
	}
}

func TestCondEstValidationEverywhere(t *testing.T) {
	// Options validation: a negative or NaN CondEst is an error at
	// every planner-facing entry point, with a message that names the
	// knob; unset (0) remains valid and triggers the estimator.
	a := RandomMatrix(64, 8, 1)
	for name, bad := range map[string]float64{"negative": -2, "NaN": math.NaN()} {
		opts := Options{CondEst: bad}
		if _, err := PlanGrid(64, 8, 4, opts); err == nil || !strings.Contains(err.Error(), "CondEst") {
			t.Fatalf("%s CondEst: PlanGrid err = %v", name, err)
		}
		if _, err := AutoFactorize(a, 4, opts); err == nil {
			t.Fatalf("%s CondEst accepted by AutoFactorize", name)
		}
		if _, err := FactorizePlan(a, Plan{Variant: VariantSequential, Procs: 1}, opts); err == nil {
			t.Fatalf("%s CondEst accepted by FactorizePlan", name)
		}
		if _, err := FactorizeShifted1D(a, 4, opts); err == nil {
			t.Fatalf("%s CondEst accepted by FactorizeShifted1D", name)
		}
	}
	// +Inf (the estimator's own "numerically singular" verdict) is a
	// legal hint: it routes to the unconditionally stable variants.
	res, err := AutoFactorize(RandomMatrix(1024, 64, 2), 16, Options{CondEst: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != VariantTSQR {
		t.Fatalf("κ=+Inf routed to %v", res.Plan)
	}
}

// assertMatchesHouseholder checks a result against the sign-normalized
// Householder reference factorization element-wise.
func assertMatchesHouseholder(t *testing.T, a *Dense, res *Result, tol float64) {
	t.Helper()
	qr, rr, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Q.Data {
		if d := math.Abs(res.Q.Data[i] - qr.Data[i]); d > tol {
			t.Fatalf("Q differs from reference by %g at %d", d, i)
		}
	}
	for i := range res.R.Data {
		if d := math.Abs(res.R.Data[i] - rr.Data[i]); d > tol {
			t.Fatalf("R differs from reference by %g at %d", d, i)
		}
	}
	if e := ResidualNorm(a, res.Q, res.R); e > tol {
		t.Fatalf("residual %g", e)
	}
	if e := OrthogonalityError(res.Q); e > tol {
		t.Fatalf("orthogonality %g", e)
	}
}
