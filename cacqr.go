// Package cacqr is the public API of the CA-CQR2 reproduction: scalable
// CholeskyQR2 factorization of tall rectangular matrices, after
//
//	E. Hutter and E. Solomonik, "Communication-avoiding CholeskyQR2 for
//	rectangular matrices", IPDPS 2019 (arXiv:1710.08471).
//
// The package offers three layers:
//
//   - Sequential factorizations (CholeskyQR2, ShiftedCQR3, HouseholderQR)
//     for direct use on dense matrices.
//   - FactorizeOnGrid, which executes the paper's CA-CQR2 algorithm over
//     a simulated c × d × c processor grid (goroutine ranks with exact
//     α-β-γ cost accounting) and reports both the factors and the
//     measured per-processor communication/computation costs.
//   - The validated cost model (Model* functions and Machine values) for
//     predicting performance at supercomputer scale.
package cacqr

import (
	"context"
	"fmt"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/costmodel"
	"cacqr/internal/lin"
)

// Dense is a row-major dense matrix, the package's public exchange type.
type Dense struct {
	Rows, Cols int
	Data       []float64 // length Rows*Cols, row-major
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromData wraps row-major data (copied) in a Dense.
func FromData(r, c int, data []float64) (*Dense, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("cacqr: %d values for a %dx%d matrix", len(data), r, c)
	}
	d := NewDense(r, c)
	copy(d.Data, data)
	return d, nil
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

func (d *Dense) toLin() *lin.Matrix { return lin.FromSlice(d.Rows, d.Cols, d.Data) }

func fromLin(m *lin.Matrix) *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*m.Cols:(i+1)*m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// CholeskyQR2 computes the reduced QR factorization A = Q·R by two
// CholeskyQR passes. Q has orthonormal columns to machine precision when
// κ(A) ≲ 10⁷; beyond that it returns an error (use ShiftedCQR3).
func CholeskyQR2(a *Dense) (q, r *Dense, err error) {
	ql, rl, err := core.CholeskyQR2(a.toLin(), 0)
	if err != nil {
		return nil, nil, err
	}
	return fromLin(ql), fromLin(rl), nil
}

// ShiftedCQR3 is the unconditionally stable three-pass variant: a shifted
// CholeskyQR pass followed by CholeskyQR2.
func ShiftedCQR3(a *Dense) (q, r *Dense, err error) {
	ql, rl, err := core.ShiftedCQR3(a.toLin(), 0)
	if err != nil {
		return nil, nil, err
	}
	return fromLin(ql), fromLin(rl), nil
}

// HouseholderQR is the classical reference factorization.
func HouseholderQR(a *Dense) (q, r *Dense, err error) {
	ql, rl, err := lin.QR(a.toLin())
	if err != nil {
		return nil, nil, err
	}
	return fromLin(ql), fromLin(rl), nil
}

// OrthogonalityError returns ‖QᵀQ − I‖_F.
func OrthogonalityError(q *Dense) float64 { return lin.OrthogonalityError(q.toLin()) }

// ResidualNorm returns ‖A − Q·R‖_F / ‖A‖_F.
func ResidualNorm(a, q, r *Dense) float64 {
	return lin.ResidualNorm(a.toLin(), q.toLin(), r.toLin())
}

// EstimateCondition returns a cheap power-iteration estimate of κ₂(A) —
// the same measurement AutoFactorize makes when Options.CondEst is
// unset. The well-conditioned path costs one n×n Gram SYRK plus a few
// dozen n² matvecs; when κ ≳ ε^{-1/2} saturates that route, a
// Householder-QR fallback (2mn², paid only on ill-conditioned inputs)
// resolves κ up to ~1/ε, so the planner can still tell ShiftedCQR3's
// regime from true TSQR territory. The estimate converges from below;
// +Inf means numerically rank-deficient.
func EstimateCondition(a *Dense) float64 {
	return lin.EstimateCond(a.toLin(), condEstIters)
}

// RandomMatrix returns a deterministic random m×n test matrix.
func RandomMatrix(m, n int, seed int64) *Dense {
	return fromLin(lin.RandomMatrix(m, n, seed))
}

// RandomWithCond returns an m×n matrix with 2-norm condition number cond.
func RandomWithCond(m, n int, cond float64, seed int64) *Dense {
	return fromLin(lin.RandomWithCond(m, n, cond, seed))
}

// GridSpec selects the paper's tunable c × d × c processor grid
// (P = c·d·c ranks). C = 1 recovers the 1D algorithm; C = D is the 3D
// algorithm.
type GridSpec struct {
	C, D int
}

// Procs returns the rank count of the grid.
func (g GridSpec) Procs() int { return g.C * g.D * g.C }

// validate rejects infeasible grids — the shared check behind every
// entry point that takes an explicit spec.
func (g GridSpec) validate() error {
	if g.C < 1 || g.D < g.C || g.D%g.C != 0 {
		return fmt.Errorf("cacqr: invalid grid %dx%dx%d (need 1 ≤ c ≤ d, c | d)", g.C, g.D, g.C)
	}
	return nil
}

// Options tune the factorization like the paper's experiment legends.
type Options struct {
	// InverseDepth is the number of top CFR3D recursion levels that skip
	// the explicit triangular-inverse block (0 = full inverse).
	InverseDepth int
	// BaseSize is CFR3D's base-case dimension n_o (0 = the
	// bandwidth-optimal default n/c²).
	BaseSize int
	// PanelWidth, when > 0, selects the panel-wise variant (the paper's
	// §V subpanel proposal): columns are processed in panels of this
	// width, cutting the flop overhead for near-square matrices.
	// Requires c | PanelWidth and PanelWidth | n.
	PanelWidth int
	// Timeout bounds the simulated run's wall-clock time (0 = 10min).
	Timeout time.Duration
	// Workers bounds the goroutines each simulated rank's local level-3
	// kernels may use on top of the rank's own goroutine. The default of
	// 0 means 1 (serial per rank): a simulated grid already runs P
	// goroutines, so extra fan-out only helps when the grid is small and
	// the per-rank blocks are large. Factors and measured costs are
	// identical for any value — Workers trades wall-clock only.
	//
	// The sequential entry points (CholeskyQR2, ShiftedCQR3, Solve) do
	// not consult Options; they always use all of GOMAXPROCS.
	// Negative values are rejected with an error.
	Workers int
	// MemBudget bounds the planner's modeled per-rank memory footprint
	// in bytes (0 = unlimited). Consulted only by PlanGrid,
	// AutoFactorize, and the auto mode of SolveLeastSquares; the
	// fixed-grid entry points ignore it. When the budget rejects every
	// in-core variant, the planner falls back to the out-of-core
	// streaming TSQR rather than failing.
	MemBudget int64
	// PanelRows is the row height of the out-of-core streaming panels
	// (FactorizeStreaming and the planner's stream-tsqr dispatch).
	// 0 = DefaultPanelRows for direct streaming calls, the planner's
	// chosen height for dispatched stream plans. Negative values are
	// rejected; the in-core entry points ignore it.
	PanelRows int
	// PlanMachine selects the machine model whose α-β-γ constants rank
	// the planner's candidates (nil = Stampede2, the paper's primary
	// platform). Planner-only, like MemBudget.
	PlanMachine *Machine
	// IncludeBaselines adds the ScaLAPACK-style PGEQRF baseline to
	// PlanGrid's ranking as a reference row (the grid the paper compares
	// against). AutoFactorize never selects it, but FactorizePlan can
	// execute it like any other row.
	IncludeBaselines bool
	// CondEst is a 2-norm condition-number hint κ₂(A) for the
	// condition-aware routing: variants whose predicted ‖QᵀQ−I‖ at that
	// κ exceeds 1e-8 are rejected, which moves κ ≳ 10⁷ inputs off the
	// plain CholeskyQR2 family and onto ShiftedCQR3 or TSQR. Leave it
	// unset (0) and AutoFactorize runs a cheap power-iteration estimator
	// on the matrix itself (PlanGrid, which never sees the matrix,
	// treats 0 as "assume well-conditioned"). Negative or NaN values are
	// rejected with an error. Consulted by the planner entry points and
	// by SolveLeastSquares — which estimates like AutoFactorize even on
	// a fixed grid, and reroutes ill-conditioned inputs off the spec —
	// but not by the raw Factorize* entry points, which run exactly what
	// they were asked to.
	CondEst float64
	// Transport selects how the distributed entry points execute: nil
	// (or SimTransport()) runs the simulated goroutine runtime with its
	// exact α-β-γ accounting; TCPTransport(workers...) runs the job
	// across real OS worker processes, with measured traffic and
	// wall-clock costs. The sequential entry points ignore it.
	Transport *Transport
	// Tracer, when non-nil, samples requests into per-request span
	// trees — serve admission, plan lookup, κ estimation, execution,
	// per-pass kernel stages, per-collective transfers with payload
	// bytes — and aggregates them into its Metrics registry. Consulted
	// by Server (each Submit becomes one trace); the direct Factorize*
	// entry points ignore it, having no request boundary to trace. nil
	// (the default) disables tracing at ~zero cost.
	Tracer *Tracer

	// ctx carries request-scoped cancellation into a run; set via the
	// context-aware entry points (Server.SubmitCtx and friends). nil
	// means no cancellation beyond Timeout.
	ctx context.Context
}

// CostStats reports a run's measured per-processor cost in the paper's
// α-β-γ units, plus the critical-path virtual time under the default
// machine parameters.
type CostStats struct {
	Msgs  int64   // α units: message latencies on the critical path
	Words int64   // β units: words moved per processor
	Flops int64   // γ units: floating point operations per processor
	Bytes int64   // raw wire bytes per processor (TCP transport; 0 simulated)
	Time  float64 // virtual seconds under simmpi.DefaultCost (wall-clock over TCP)
}

// Result carries the distributed factorization's outcome.
type Result struct {
	Q, R  *Dense
	Stats CostStats
	// Plan is the planner's choice when the run came from AutoFactorize
	// (nil for the fixed-grid entry points).
	Plan *Plan
	// CondEst is the condition-number hint the planner routed on: the
	// caller's Options.CondEst, or — when that was unset — the value
	// the power-iteration estimator measured. Zero for the fixed-grid
	// entry points and for FactorizePlan (which trusts the given plan).
	CondEst float64
	// Stream reports the out-of-core run's panel schedule and resource
	// accounting when the factorization streamed (FactorizeStreaming or
	// a dispatched stream-tsqr plan); nil for in-core runs.
	Stream *StreamInfo
}

// FactorizeOnGrid runs CA-CQR2 on a c × d × c grid: the m×n matrix is
// scattered from rank 0 in the paper's cyclic layout over P = c·d·c
// ranks (replicated across depth slices by the grid's z broadcast, as a
// cluster would load it), factored, and the factors gathered back.
// Requires d | m and c | n. Ranks are simulated goroutines by default;
// Options.Transport can move them onto real OS worker processes.
func FactorizeOnGrid(a *Dense, spec GridSpec, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return runDistributed(wireJob{
		Variant: variantGrid, M: a.Rows, N: a.Cols, C: spec.C, D: spec.D,
		PanelWidth: opts.PanelWidth, InverseDepth: opts.InverseDepth,
		BaseSize: opts.BaseSize, Workers: opts.Workers,
	}, a.toLin(), opts)
}

// Factorize1D factors a tall matrix with 1D-CQR2 (Algorithm 7) on a
// simulated 1D grid of procs ranks, each owning a contiguous m/procs
// row block (requires procs | m). procs = 1 is the sequential
// CholeskyQR2 with measured cost accounting. This is the planner's
// c = 1 execution path: the paper's tall-skinny regime, where
// replication buys nothing and the whole Gram matrix fits one rank.
func Factorize1D(a *Dense, procs int, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("cacqr: invalid processor count %d", procs)
	}
	if a.Rows%procs != 0 {
		return nil, fmt.Errorf("cacqr: m=%d not divisible by P=%d", a.Rows, procs)
	}
	return runDistributed(wireJob{
		Variant: variant1D, M: a.Rows, N: a.Cols, Procs: procs, Workers: opts.Workers,
	}, a.toLin(), opts)
}

// FactorizeShifted1D factors a tall matrix with the distributed shifted
// CholeskyQR3 (one shifted CholeskyQR pass, then 1D-CQR2) on a simulated
// 1D grid of procs ranks, each owning a contiguous m/procs row block
// (requires procs | m; procs = 1 is the sequential ShiftedCQR3 with
// measured cost accounting). It stays stable to κ(A) ≈ 1/ε — far beyond
// CholeskyQR2's ~ε^{-1/2} regime — at ~1.5× the flops, and is what the
// condition-aware planner dispatches for ill-conditioned tall inputs.
func FactorizeShifted1D(a *Dense, procs int, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("cacqr: invalid processor count %d", procs)
	}
	if a.Rows%procs != 0 {
		return nil, fmt.Errorf("cacqr: m=%d not divisible by P=%d", a.Rows, procs)
	}
	return runDistributed(wireJob{
		Variant: variantShifted1D, M: a.Rows, N: a.Cols, Procs: procs, Workers: opts.Workers,
	}, a.toLin(), opts)
}

// FactorizeTSQR factors a tall-skinny matrix with the binary-tree TSQR
// baseline on a simulated 1D grid of procs ranks (a power of two). TSQR
// is unconditionally stable — the right tool when κ(A) exceeds
// CholeskyQR2's ~1/√ε regime — at the price of a log P critical path of
// small factorizations. panelWidth > 0 selects the blocked variant,
// which only needs m/procs ≥ panelWidth instead of m/procs ≥ n.
func FactorizeTSQR(a *Dense, procs, panelWidth int, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("cacqr: invalid processor count %d", procs)
	}
	// Checked here, before any ranks spin up, like every sibling entry
	// point: an invalid shape must fail fast, not after launching all P
	// ranks.
	if a.Rows%procs != 0 {
		return nil, fmt.Errorf("cacqr: m=%d not divisible by P=%d", a.Rows, procs)
	}
	return runDistributed(wireJob{
		Variant: variantTSQR, M: a.Rows, N: a.Cols, Procs: procs,
		PanelWidth: panelWidth, Workers: opts.Workers,
	}, a.toLin(), opts)
}

// FactorizePGEQRF factors an m×n matrix with the ScaLAPACK-style 2D
// Householder baseline (internal/pgeqrf) on a simulated pr×pc process
// grid with panel width nb (requires pr | m, nb | n, m ≥ n). The
// factored form's reflectors are turned into the explicit reduced Q by
// applying them to the distributed identity (the PDORGQR pattern), and
// signs are normalized so R has a non-negative diagonal — directly
// comparable with the CholeskyQR family. Unconditionally stable; this
// is the execution path behind the planner's PGEQRF rows, making every
// priced plan dispatchable. Note the measured Stats include the
// explicit-Q formation and its m×n output Allreduce, which the cost
// model's PGEQRF row (factorization only, the paper's comparison
// object) deliberately does not price — unlike the CQR-family paths,
// measured cost here exceeds the plan's prediction by that output
// work.
func FactorizePGEQRF(a *Dense, pr, pc, nb int, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	if pr < 1 || pc < 1 {
		return nil, fmt.Errorf("cacqr: invalid process grid %dx%d", pr, pc)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("cacqr: PGEQRF requires m ≥ n, got %dx%d", a.Rows, a.Cols)
	}
	return runDistributed(wireJob{
		Variant: variantPGEQRF, M: a.Rows, N: a.Cols, PR: pr, PC: pc, NB: nb,
		Workers: opts.Workers,
	}, a.toLin(), opts)
}

// Machine re-exports the cost model's machine description.
type Machine = costmodel.Machine

// Stampede2 and BlueWaters are the paper's two evaluation platforms.
var (
	Stampede2  = costmodel.Stampede2
	BlueWaters = costmodel.BlueWaters
)

// ModelCost is the per-processor critical-path cost predicted by the
// validated analytic model.
type ModelCost = costmodel.Cost

// ModelCACQR2 predicts CA-CQR2's cost for an m×n matrix on a c×d×c grid.
func ModelCACQR2(m, n int, spec GridSpec, opts Options) (ModelCost, error) {
	return costmodel.CACQR2(m, n, costmodel.CACQRParams{
		C: spec.C, D: spec.D, BaseSize: opts.BaseSize, InverseDepth: opts.InverseDepth,
	})
}

// ModelPGEQRF predicts the ScaLAPACK-style baseline's cost on a pr×pc
// grid with panel width nb.
func ModelPGEQRF(m, n, pr, pc, nb int) (ModelCost, error) {
	return costmodel.PGEQRF(m, n, pr, pc, nb)
}

// PredictGFlopsPerNode converts a modeled cost into the paper's
// Gigaflops/s/node metric on a machine with the given node count.
func PredictGFlopsPerNode(mach Machine, c ModelCost, m, n, nodes int) float64 {
	return mach.GFlopsPerNode(c, m, n, nodes)
}
